package driver

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sqlparser"
	"repro/internal/wire"
)

// Stmt is a prepared statement at the driver layer: compiled once, executed
// many times with different arguments — the JDBC PreparedStatement analog.
type Stmt interface {
	// Exec binds args to the statement's placeholders in order and runs it.
	Exec(args []mem.Value) (*engine.Result, error)
	// NumArgs returns how many arguments Exec expects.
	NumArgs() int
	// Close releases the statement's resources.
	Close() error
}

// Preparer is an optional Conn extension for connections with a native
// prepared path. Use the package-level Prepare helper rather than asserting
// it yourself: the helper emulates preparation over plain Query for
// connections that lack it.
type Preparer interface {
	Prepare(sql string) (Stmt, error)
}

// Prepare compiles sql on c. Connections with a native prepared path
// (network, direct, logging) use it; any other Conn gets a text-emulated
// statement that binds arguments client-side and sends ordinary Query text,
// so every Conn supports the prepared API.
func Prepare(c Conn, sql string) (Stmt, error) {
	if p, ok := c.(Preparer); ok {
		return p.Prepare(sql)
	}
	return newTextStmt(c, sql)
}

// Prepare compiles sql on the leased connection.
func (l *Lease) Prepare(sql string) (Stmt, error) {
	if l.done {
		return nil, errors.New("driver: lease released")
	}
	return Prepare(l.Conn, sql)
}

// ---------------------------------------------------------------------------
// Text emulation
// ---------------------------------------------------------------------------

// textStmt emulates preparation over a plain Conn: the template is parsed
// once, each Exec binds the arguments into a copy and sends the rendered
// text through Query.
type textStmt struct {
	c       Conn
	parsed  sqlparser.Stmt
	numArgs int
}

func newTextStmt(c Conn, sql string) (*textStmt, error) {
	parsed, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &textStmt{c: c, parsed: parsed, numArgs: len(sqlparser.Placeholders(parsed))}, nil
}

func (s *textStmt) NumArgs() int { return s.numArgs }
func (s *textStmt) Close() error { return nil }

func (s *textStmt) render(args []mem.Value) (string, error) {
	lits := make([]sqlparser.Expr, len(args))
	for i, a := range args {
		lits[i] = a.Literal()
	}
	bound, err := sqlparser.Bind(s.parsed, lits)
	if err != nil {
		return "", err
	}
	return bound.String(), nil
}

func (s *textStmt) Exec(args []mem.Value) (*engine.Result, error) {
	sql, err := s.render(args)
	if err != nil {
		return nil, err
	}
	return s.c.Query(sql)
}

// ---------------------------------------------------------------------------
// Network connection
// ---------------------------------------------------------------------------

// Prepare implements Preparer over the wire protocol's PREPARE/EXECUTE
// verbs. The wire statement survives reconnects (it re-prepares itself) and
// degrades to text against servers that predate the verbs.
func (n *netConn) Prepare(sql string) (Stmt, error) {
	ws, err := n.c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &netStmt{s: ws}, nil
}

type netStmt struct{ s *wire.Stmt }

func (s *netStmt) Exec(args []mem.Value) (*engine.Result, error) { return s.s.Exec(args) }
func (s *netStmt) NumArgs() int                                  { return s.s.NumArgs() }
func (s *netStmt) Close() error                                  { return s.s.Close() }

// QueryStmt executes a compiled template through a per-connection statement
// cache: the first execution of a fingerprint pays one PREPARE roundtrip,
// subsequent ones send EXECUTE with bound values only — no SQL text crosses
// the wire and the server re-parses nothing. Satisfies the invalidator's
// StmtPoller extension.
func (n *netConn) QueryStmt(fingerprint string, tmpl *sqlparser.SelectStmt, args []mem.Value) (*engine.Result, error) {
	ws, err := n.stmts.GetOrPut(fingerprint, func() (*wire.Stmt, error) {
		return n.c.Prepare(tmpl.String())
	})
	if err != nil {
		return nil, err
	}
	return ws.Exec(args)
}

// ---------------------------------------------------------------------------
// Direct connection
// ---------------------------------------------------------------------------

// Prepare implements Preparer against the in-process engine.
func (c *directConn) Prepare(sql string) (Stmt, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("driver: connection closed")
	}
	prep, err := c.d.DB.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &directStmt{c: c, prep: prep, key: prep.Template().Key}, nil
}

type directStmt struct {
	c    *directConn
	prep *engine.PreparedStmt
	key  string
}

func (s *directStmt) NumArgs() int { return s.prep.NumArgs() }
func (s *directStmt) Close() error { return nil }

func (s *directStmt) Exec(args []mem.Value) (*engine.Result, error) {
	s.c.mu.Lock()
	closed := s.c.closed
	s.c.mu.Unlock()
	if closed {
		return nil, errors.New("driver: connection closed")
	}
	s.c.delay(s.key)
	return s.prep.Exec(args)
}

// QueryStmt executes a compiled template straight through the engine's
// statement cache — zero parsing. Satisfies the invalidator's StmtPoller
// extension.
func (c *directConn) QueryStmt(fingerprint string, tmpl *sqlparser.SelectStmt, args []mem.Value) (*engine.Result, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("driver: connection closed")
	}
	c.delay(fingerprint)
	return c.d.DB.ExecTemplate(fingerprint, tmpl, args)
}

func (c *directConn) delay(sql string) {
	if c.d.Delay != nil {
		if d := c.d.Delay(sql); d > 0 {
			time.Sleep(d)
		}
	}
}

// ---------------------------------------------------------------------------
// Logging connection
// ---------------------------------------------------------------------------

// Prepare implements Preparer: the inner statement executes through its
// native path, and every Exec logs the bound instance text with both
// timestamps. The sniffer's request-to-query mapper works on query text, so
// prepared execution must still render each instance for the log — binding
// is cheap (one AST copy); what the prepared path saves is the parse and the
// server-side recompilation, not the print.
func (c *LoggingConn) Prepare(sql string) (Stmt, error) {
	parsed, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	inner, err := Prepare(c.inner, sql)
	if err != nil {
		return nil, err
	}
	return &loggingStmt{c: c, inner: inner, parsed: parsed}, nil
}

type loggingStmt struct {
	c      *LoggingConn
	inner  Stmt
	parsed sqlparser.Stmt
}

func (s *loggingStmt) NumArgs() int { return s.inner.NumArgs() }
func (s *loggingStmt) Close() error { return s.inner.Close() }

func (s *loggingStmt) Exec(args []mem.Value) (*engine.Result, error) {
	text := s.instanceText(args)
	recv := time.Now()
	res, err := s.inner.Exec(args)
	entry := QueryLogEntry{
		LeaseID: s.c.tag.Load(),
		SQL:     text,
		Receive: recv,
		Deliver: time.Now(),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	s.c.log.Append(entry)
	return res, err
}

// instanceText renders the bound instance for the query log.
func (s *loggingStmt) instanceText(args []mem.Value) string {
	lits := make([]sqlparser.Expr, len(args))
	for i, a := range args {
		lits[i] = a.Literal()
	}
	bound, err := sqlparser.Bind(s.parsed, lits)
	if err != nil {
		// Arity mismatch: the inner Exec will fail with the real error; log
		// a best-effort marker so the attempt is still visible.
		return fmt.Sprintf("%s /* unbindable: %v */", s.parsed.String(), err)
	}
	return bound.String()
}
