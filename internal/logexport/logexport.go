// Package logexport lets the sniffer/invalidator run on a separate machine,
// as in the paper's Figure 7: "the invalidator sits on a separate machine
// which fetches the logs from the appropriate servers at regular
// intervals". The application server exposes its request log and query log
// over HTTP; the remote side mirrors them into local log instances that the
// ordinary sniffer.Mapper consumes unchanged.
package logexport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appserver"
	"repro/internal/backoff"
	"repro/internal/driver"
	"repro/internal/httpx"
)

// DefaultPathPrefix is where the exporter mounts its endpoints.
const DefaultPathPrefix = "/_cacheportal"

// wire forms. Times travel as Unix nanoseconds.
type wireRequestEntry struct {
	ID       int64   `json:"id"`
	Servlet  string  `json:"servlet"`
	Request  string  `json:"request"`
	Cookies  string  `json:"cookies"`
	Post     string  `json:"post"`
	CacheKey string  `json:"cache_key"`
	Receive  int64   `json:"receive_ns"`
	Deliver  int64   `json:"deliver_ns"`
	Status   int     `json:"status"`
	Cached   bool    `json:"cached"`
	LeaseIDs []int64 `json:"lease_ids,omitempty"`
}

type wireQueryEntry struct {
	ID      int64  `json:"id"`
	LeaseID int64  `json:"lease_id,omitempty"`
	SQL     string `json:"sql"`
	Receive int64  `json:"receive_ns"`
	Deliver int64  `json:"deliver_ns"`
	Err     string `json:"err,omitempty"`
}

type logPage[T any] struct {
	Entries   []T   `json:"entries"`
	Truncated bool  `json:"truncated"`
	Next      int64 `json:"next"` // pass as ?since= on the next pull
}

// DefaultMaxWait caps the ?wait= long-poll duration an exporter will honor.
const DefaultMaxWait = 25 * time.Second

// Exporter serves the two logs over HTTP. Both endpoints accept
// ?since=<cursor> (alias: ?cursor=) and an optional &wait=<duration>: with
// wait, a request at the log head blocks until an entry arrives or the wait
// elapses (long poll), turning the pull endpoints into a change feed without
// a new protocol.
type Exporter struct {
	Requests *appserver.RequestLog
	Queries  *driver.QueryLog
	// MaxWait caps honored ?wait= values (DefaultMaxWait when 0).
	MaxWait time.Duration
}

// Handler returns the exporter's http.Handler; mount it under
// DefaultPathPrefix.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(DefaultPathPrefix+"/logs/requests", e.serveRequests)
	mux.HandleFunc(DefaultPathPrefix+"/logs/queries", e.serveQueries)
	return mux
}

func sinceParam(r *http.Request) int64 {
	q := r.URL.Query()
	s := q.Get("cursor")
	if s == "" {
		s = q.Get("since")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func (e *Exporter) waitParam(r *http.Request) time.Duration {
	d, err := time.ParseDuration(r.URL.Query().Get("wait"))
	if err != nil || d <= 0 {
		return 0
	}
	max := e.MaxWait
	if max <= 0 {
		max = DefaultMaxWait
	}
	if d > max {
		d = max
	}
	return d
}

// longPoll blocks until the log (observed via changed/head) has entries at or
// past since, the wait elapses, or the client goes away. The changed channel
// is obtained before re-checking the head, so an append between the check and
// the wait cannot be missed.
func longPoll(r *http.Request, wait time.Duration, changed func() <-chan struct{}, head func() int64, since int64) {
	if wait <= 0 || head() > since {
		return
	}
	deadline := time.Now().Add(wait)
	for {
		ch := changed()
		if head() > since {
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

func (e *Exporter) serveRequests(w http.ResponseWriter, r *http.Request) {
	since := sinceParam(r)
	longPoll(r, e.waitParam(r), e.Requests.Changed, e.Requests.NextID, since)
	entries, truncated := e.Requests.Since(since)
	page := logPage[wireRequestEntry]{Truncated: truncated, Next: since}
	for _, en := range entries {
		page.Entries = append(page.Entries, wireRequestEntry{
			ID: en.ID, Servlet: en.Servlet, Request: en.Request,
			Cookies: en.Cookies, Post: en.Post, CacheKey: en.CacheKey,
			Receive: en.Receive.UnixNano(), Deliver: en.Deliver.UnixNano(),
			Status: en.Status, Cached: en.Cached, LeaseIDs: en.LeaseIDs,
		})
		page.Next = en.ID + 1
	}
	if page.Next < e.Requests.NextID() && len(page.Entries) == 0 {
		page.Next = e.Requests.NextID()
	}
	writeJSON(w, page)
}

func (e *Exporter) serveQueries(w http.ResponseWriter, r *http.Request) {
	since := sinceParam(r)
	longPoll(r, e.waitParam(r), e.Queries.Changed, e.Queries.NextID, since)
	entries, truncated := e.Queries.Since(since)
	page := logPage[wireQueryEntry]{Truncated: truncated, Next: since}
	for _, en := range entries {
		page.Entries = append(page.Entries, wireQueryEntry{
			ID: en.ID, LeaseID: en.LeaseID, SQL: en.SQL,
			Receive: en.Receive.UnixNano(), Deliver: en.Deliver.UnixNano(),
			Err: en.Err,
		})
		page.Next = en.ID + 1
	}
	if page.Next < e.Queries.NextID() && len(page.Entries) == 0 {
		page.Next = e.Queries.NextID()
	}
	writeJSON(w, page)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Wrap serves the exporter's endpoints alongside an existing handler: paths
// under DefaultPathPrefix go to the exporter, everything else to next.
func (e *Exporter) Wrap(next http.Handler) http.Handler {
	h := e.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) >= len(DefaultPathPrefix) && r.URL.Path[:len(DefaultPathPrefix)] == DefaultPathPrefix {
			h.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// DefaultLongPoll is the ?wait= duration Run uses when Mirror.LongPoll is
// unset. It stays well under the shared client's whole-request timeout
// (httpx.DefaultTimeout) so a held-open empty response is never mistaken for
// a hung server.
const DefaultLongPoll = 5 * time.Second

// Mirror pulls both remote logs into local RequestLog/QueryLog instances so
// an unmodified sniffer.Mapper can run against them on another machine.
// Sync pulls one snapshot of each log; Run long-polls both endpoints on
// dedicated goroutines so entries land as they are appended.
type Mirror struct {
	// BaseURL is the application server's base URL (the exporter is
	// expected under BaseURL + DefaultPathPrefix).
	BaseURL string
	// Client defaults to the shared timeout-bearing client (httpx.Default),
	// so a hung application server cannot stall the invalidation loop.
	Client *http.Client
	// LongPoll is the ?wait= duration Run sends (DefaultLongPoll when 0).
	// Keep it below the HTTP client's whole-request timeout.
	LongPoll time.Duration

	// Requests and Queries are the local mirrors; NewMirror creates them.
	Requests *appserver.RequestLog
	Queries  *driver.QueryLog

	// One mutex per log, held across a whole page pull (fetch, append,
	// cursor advance): Run's pumps and explicit Sync calls may interleave,
	// and every remote entry must be appended locally exactly once. The two
	// logs stay independent so one log's long poll never stalls the other.
	reqMu     sync.Mutex
	qMu       sync.Mutex
	nextReq   int64
	nextQuery int64

	// Sync preemption: a pump's parked long poll holds the log mutex, so a
	// Sync that simply queued behind it would wait out the whole ?wait=
	// window — fatal for event-driven cycles, whose soundness pull must run
	// at roundtrip latency. Each pump publishes a cancel for its in-flight
	// park (reqCancel/qCancel); Sync bumps the waiter count and fires the
	// cancel, and a pump that sees waiters > 0 downgrades to wait=0 so it
	// cannot re-park ahead of the Sync. Order matters on both sides: the
	// pump stores the cancel before checking the count, Sync bumps the
	// count before loading the cancel — whichever way the race lands, the
	// park is either cut short or never entered.
	reqSyncs  atomic.Int32
	qSyncs    atomic.Int32
	reqCancel atomic.Value // context.CancelFunc
	qCancel   atomic.Value // context.CancelFunc
}

// NewMirror builds a mirror of the exporter at baseURL.
func NewMirror(baseURL string) *Mirror {
	return &Mirror{
		BaseURL:   baseURL,
		Requests:  appserver.NewRequestLog(0),
		Queries:   driver.NewQueryLog(0),
		nextReq:   1,
		nextQuery: 1,
	}
}

func (m *Mirror) client() *http.Client {
	return httpx.Client(m.Client)
}

func getJSON[T any](ctx context.Context, c *http.Client, url string, out *logPage[T]) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("logexport: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (m *Mirror) logURL(log string, cursor int64, wait time.Duration) string {
	u := fmt.Sprintf("%s%s/logs/%s?cursor=%d", m.BaseURL, DefaultPathPrefix, log, cursor)
	if wait > 0 {
		u += "&wait=" + wait.String()
	}
	return u
}

// syncRequests pulls one request-log page (held open up to wait when > 0)
// and mirrors it locally.
func (m *Mirror) syncRequests(ctx context.Context, wait time.Duration) (int, error) {
	m.reqMu.Lock()
	defer m.reqMu.Unlock()
	if wait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		m.reqCancel.Store(cancel)
		if m.reqSyncs.Load() > 0 {
			wait = 0 // a Sync is waiting for this lock; don't park on its turn
		}
	}
	var page logPage[wireRequestEntry]
	if err := getJSON(ctx, m.client(), m.logURL("requests", m.nextReq, wait), &page); err != nil {
		return 0, err
	}
	for _, en := range page.Entries {
		m.Requests.Append(appserver.RequestLogEntry{
			Servlet: en.Servlet, Request: en.Request, Cookies: en.Cookies,
			Post: en.Post, CacheKey: en.CacheKey,
			Receive: time.Unix(0, en.Receive), Deliver: time.Unix(0, en.Deliver),
			Status: en.Status, Cached: en.Cached, LeaseIDs: en.LeaseIDs,
		})
	}
	if page.Next > m.nextReq {
		m.nextReq = page.Next
	}
	return len(page.Entries), nil
}

// syncQueries pulls one query-log page (held open up to wait when > 0) and
// mirrors it locally.
func (m *Mirror) syncQueries(ctx context.Context, wait time.Duration) (int, error) {
	m.qMu.Lock()
	defer m.qMu.Unlock()
	if wait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		m.qCancel.Store(cancel)
		if m.qSyncs.Load() > 0 {
			wait = 0
		}
	}
	var page logPage[wireQueryEntry]
	if err := getJSON(ctx, m.client(), m.logURL("queries", m.nextQuery, wait), &page); err != nil {
		return 0, err
	}
	for _, en := range page.Entries {
		m.Queries.Append(driver.QueryLogEntry{
			LeaseID: en.LeaseID, SQL: en.SQL,
			Receive: time.Unix(0, en.Receive), Deliver: time.Unix(0, en.Deliver),
			Err: en.Err,
		})
	}
	if page.Next > m.nextQuery {
		m.nextQuery = page.Next
	}
	return len(page.Entries), nil
}

// Sync pulls one page of each log. It returns how many entries arrived.
// While Run's pumps are active, Sync preempts a parked long poll instead of
// queueing behind it (the pump retries from its cursor, losing nothing), so
// the synchronous head observation an event-driven cycle depends on costs a
// roundtrip, not a long-poll window.
func (m *Mirror) Sync() (int, error) {
	m.reqSyncs.Add(1)
	if c, ok := m.reqCancel.Load().(context.CancelFunc); ok {
		c()
	}
	n, err := m.syncRequests(context.Background(), 0)
	m.reqSyncs.Add(-1)
	if err != nil {
		return n, err
	}
	m.qSyncs.Add(1)
	if c, ok := m.qCancel.Load().(context.CancelFunc); ok {
		c()
	}
	nq, err := m.syncQueries(context.Background(), 0)
	m.qSyncs.Add(-1)
	return n + nq, err
}

// Run long-polls both log endpoints until stop closes, mirroring entries as
// the application server appends them. Each log gets its own pump goroutine
// so a quiet request log cannot delay query delivery. Errors back off
// exponentially and the pump resumes from its cursor, so a dropped or
// restarted connection costs latency, never entries. Run returns once both
// pumps have exited; in-flight requests are canceled via context.
func (m *Mirror) Run(stop <-chan struct{}) {
	wait := m.LongPoll
	if wait <= 0 {
		wait = DefaultLongPoll
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-stop; cancel() }()
	var wg sync.WaitGroup
	pump := func(sync func(context.Context, time.Duration) (int, error)) {
		defer wg.Done()
		failures := 0
		for ctx.Err() == nil {
			if _, err := sync(ctx, wait); err != nil {
				if errors.Is(err, context.Canceled) && ctx.Err() == nil {
					// A Sync preempted the park; it advances the cursor
					// itself, so just resume from wherever it leaves off.
					failures = 0
					continue
				}
				failures++
				t := time.NewTimer(backoff.Delay(250*time.Millisecond, failures, 5*time.Second))
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
				continue
			}
			failures = 0
		}
	}
	wg.Add(2)
	go pump(m.syncRequests)
	go pump(m.syncQueries)
	wg.Wait()
}
