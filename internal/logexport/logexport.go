// Package logexport lets the sniffer/invalidator run on a separate machine,
// as in the paper's Figure 7: "the invalidator sits on a separate machine
// which fetches the logs from the appropriate servers at regular
// intervals". The application server exposes its request log and query log
// over HTTP; the remote side mirrors them into local log instances that the
// ordinary sniffer.Mapper consumes unchanged.
package logexport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/httpx"
)

// DefaultPathPrefix is where the exporter mounts its endpoints.
const DefaultPathPrefix = "/_cacheportal"

// wire forms. Times travel as Unix nanoseconds.
type wireRequestEntry struct {
	ID       int64   `json:"id"`
	Servlet  string  `json:"servlet"`
	Request  string  `json:"request"`
	Cookies  string  `json:"cookies"`
	Post     string  `json:"post"`
	CacheKey string  `json:"cache_key"`
	Receive  int64   `json:"receive_ns"`
	Deliver  int64   `json:"deliver_ns"`
	Status   int     `json:"status"`
	Cached   bool    `json:"cached"`
	LeaseIDs []int64 `json:"lease_ids,omitempty"`
}

type wireQueryEntry struct {
	ID      int64  `json:"id"`
	LeaseID int64  `json:"lease_id,omitempty"`
	SQL     string `json:"sql"`
	Receive int64  `json:"receive_ns"`
	Deliver int64  `json:"deliver_ns"`
	Err     string `json:"err,omitempty"`
}

type logPage[T any] struct {
	Entries   []T   `json:"entries"`
	Truncated bool  `json:"truncated"`
	Next      int64 `json:"next"` // pass as ?since= on the next pull
}

// Exporter serves the two logs over HTTP.
type Exporter struct {
	Requests *appserver.RequestLog
	Queries  *driver.QueryLog
}

// Handler returns the exporter's http.Handler; mount it under
// DefaultPathPrefix.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(DefaultPathPrefix+"/logs/requests", e.serveRequests)
	mux.HandleFunc(DefaultPathPrefix+"/logs/queries", e.serveQueries)
	return mux
}

func sinceParam(r *http.Request) int64 {
	n, err := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func (e *Exporter) serveRequests(w http.ResponseWriter, r *http.Request) {
	since := sinceParam(r)
	entries, truncated := e.Requests.Since(since)
	page := logPage[wireRequestEntry]{Truncated: truncated, Next: since}
	for _, en := range entries {
		page.Entries = append(page.Entries, wireRequestEntry{
			ID: en.ID, Servlet: en.Servlet, Request: en.Request,
			Cookies: en.Cookies, Post: en.Post, CacheKey: en.CacheKey,
			Receive: en.Receive.UnixNano(), Deliver: en.Deliver.UnixNano(),
			Status: en.Status, Cached: en.Cached, LeaseIDs: en.LeaseIDs,
		})
		page.Next = en.ID + 1
	}
	if page.Next < e.Requests.NextID() && len(page.Entries) == 0 {
		page.Next = e.Requests.NextID()
	}
	writeJSON(w, page)
}

func (e *Exporter) serveQueries(w http.ResponseWriter, r *http.Request) {
	since := sinceParam(r)
	entries, truncated := e.Queries.Since(since)
	page := logPage[wireQueryEntry]{Truncated: truncated, Next: since}
	for _, en := range entries {
		page.Entries = append(page.Entries, wireQueryEntry{
			ID: en.ID, LeaseID: en.LeaseID, SQL: en.SQL,
			Receive: en.Receive.UnixNano(), Deliver: en.Deliver.UnixNano(),
			Err: en.Err,
		})
		page.Next = en.ID + 1
	}
	if page.Next < e.Queries.NextID() && len(page.Entries) == 0 {
		page.Next = e.Queries.NextID()
	}
	writeJSON(w, page)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Wrap serves the exporter's endpoints alongside an existing handler: paths
// under DefaultPathPrefix go to the exporter, everything else to next.
func (e *Exporter) Wrap(next http.Handler) http.Handler {
	h := e.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) >= len(DefaultPathPrefix) && r.URL.Path[:len(DefaultPathPrefix)] == DefaultPathPrefix {
			h.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Mirror pulls both remote logs into local RequestLog/QueryLog instances so
// an unmodified sniffer.Mapper can run against them on another machine.
type Mirror struct {
	// BaseURL is the application server's base URL (the exporter is
	// expected under BaseURL + DefaultPathPrefix).
	BaseURL string
	// Client defaults to the shared timeout-bearing client (httpx.Default),
	// so a hung application server cannot stall the invalidation loop.
	Client *http.Client

	// Requests and Queries are the local mirrors; NewMirror creates them.
	Requests *appserver.RequestLog
	Queries  *driver.QueryLog

	nextReq   int64
	nextQuery int64
}

// NewMirror builds a mirror of the exporter at baseURL.
func NewMirror(baseURL string) *Mirror {
	return &Mirror{
		BaseURL:   baseURL,
		Requests:  appserver.NewRequestLog(0),
		Queries:   driver.NewQueryLog(0),
		nextReq:   1,
		nextQuery: 1,
	}
}

func (m *Mirror) client() *http.Client {
	return httpx.Client(m.Client)
}

func getJSON[T any](c *http.Client, url string, out *logPage[T]) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("logexport: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Sync pulls one page of each log. It returns how many entries arrived.
func (m *Mirror) Sync() (int, error) {
	n := 0
	var reqPage logPage[wireRequestEntry]
	url := fmt.Sprintf("%s%s/logs/requests?since=%d", m.BaseURL, DefaultPathPrefix, m.nextReq)
	if err := getJSON(m.client(), url, &reqPage); err != nil {
		return n, err
	}
	for _, en := range reqPage.Entries {
		m.Requests.Append(appserver.RequestLogEntry{
			Servlet: en.Servlet, Request: en.Request, Cookies: en.Cookies,
			Post: en.Post, CacheKey: en.CacheKey,
			Receive: time.Unix(0, en.Receive), Deliver: time.Unix(0, en.Deliver),
			Status: en.Status, Cached: en.Cached, LeaseIDs: en.LeaseIDs,
		})
		n++
	}
	if reqPage.Next > m.nextReq {
		m.nextReq = reqPage.Next
	}

	var qPage logPage[wireQueryEntry]
	url = fmt.Sprintf("%s%s/logs/queries?since=%d", m.BaseURL, DefaultPathPrefix, m.nextQuery)
	if err := getJSON(m.client(), url, &qPage); err != nil {
		return n, err
	}
	for _, en := range qPage.Entries {
		m.Queries.Append(driver.QueryLogEntry{
			LeaseID: en.LeaseID, SQL: en.SQL,
			Receive: time.Unix(0, en.Receive), Deliver: time.Unix(0, en.Deliver),
			Err: en.Err,
		})
		n++
	}
	if qPage.Next > m.nextQuery {
		m.nextQuery = qPage.Next
	}
	return n, nil
}
