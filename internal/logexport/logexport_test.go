package logexport

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/sniffer"
)

func newExporter(t *testing.T) (*Exporter, *httptest.Server) {
	t.Helper()
	e := &Exporter{
		Requests: appserver.NewRequestLog(0),
		Queries:  driver.NewQueryLog(0),
	}
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(ts.Close)
	return e, ts
}

func TestMirrorSyncRoundtrip(t *testing.T) {
	e, ts := newExporter(t)
	base := time.Now().Truncate(time.Microsecond)
	e.Queries.Append(driver.QueryLogEntry{
		LeaseID: 7, SQL: "SELECT 1",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond),
	})
	e.Requests.Append(appserver.RequestLogEntry{
		Servlet: "s", Request: "/s?a=1", Cookies: "u=alice", Post: "p=1",
		CacheKey: "site/s?g:a=1", Receive: base, Deliver: base.Add(3 * time.Millisecond),
		Status: 200, Cached: true, LeaseIDs: []int64{7},
	})

	m := NewMirror(ts.URL)
	n, err := m.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("synced %d", n)
	}
	reqs, _ := m.Requests.Since(1)
	if len(reqs) != 1 {
		t.Fatalf("requests: %+v", reqs)
	}
	r := reqs[0]
	if r.Servlet != "s" || r.CacheKey != "site/s?g:a=1" || !r.Cached ||
		len(r.LeaseIDs) != 1 || r.LeaseIDs[0] != 7 {
		t.Fatalf("entry: %+v", r)
	}
	if !r.Receive.Equal(base) || !r.Deliver.Equal(base.Add(3*time.Millisecond)) {
		t.Fatalf("timestamps: %v %v", r.Receive, r.Deliver)
	}
	qs, _ := m.Queries.Since(1)
	if len(qs) != 1 || qs[0].SQL != "SELECT 1" || qs[0].LeaseID != 7 {
		t.Fatalf("queries: %+v", qs)
	}
}

func TestMirrorIncremental(t *testing.T) {
	e, ts := newExporter(t)
	m := NewMirror(ts.URL)

	// Empty sync advances nothing and mirrors nothing.
	if n, err := m.Sync(); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		e.Queries.Append(driver.QueryLogEntry{SQL: fmt.Sprintf("q%d", i)})
	}
	if n, _ := m.Sync(); n != 3 {
		t.Fatalf("first pull: %d", n)
	}
	// No duplicates on re-sync.
	if n, _ := m.Sync(); n != 0 {
		t.Fatalf("re-pull: %d", n)
	}
	e.Queries.Append(driver.QueryLogEntry{SQL: "q3"})
	if n, _ := m.Sync(); n != 1 {
		t.Fatalf("incremental: %d", n)
	}
	qs, _ := m.Queries.Since(1)
	if len(qs) != 4 || qs[3].SQL != "q3" {
		t.Fatalf("mirrored: %+v", qs)
	}
}

func TestMirrorFeedsMapper(t *testing.T) {
	e, ts := newExporter(t)
	base := time.Now()
	e.Queries.Append(driver.QueryLogEntry{
		LeaseID: 1, SQL: "SELECT * FROM t",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond),
	})
	e.Requests.Append(appserver.RequestLogEntry{
		Servlet: "page", CacheKey: "k", Cached: true,
		Receive: base, Deliver: base.Add(5 * time.Millisecond), LeaseIDs: []int64{1},
	})

	m := NewMirror(ts.URL)
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	qm := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(m.Requests, m.Queries, qm)
	if n := mapper.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
	pm, ok := qm.Get("k")
	if !ok || len(pm.Queries) != 1 || pm.Queries[0].SQL != "SELECT * FROM t" {
		t.Fatalf("mapping: %+v", pm)
	}
}

func TestWrapRoutes(t *testing.T) {
	e, _ := newExporter(t)
	e.Queries.Append(driver.QueryLogEntry{SQL: "x"})
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "app")
	})
	ts := httptest.NewServer(e.Wrap(app))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("app route: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + DefaultPathPrefix + "/logs/queries?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type: %s", ct)
	}
}

func TestSinceParamValidation(t *testing.T) {
	e, ts := newExporter(t)
	e.Queries.Append(driver.QueryLogEntry{SQL: "a"})
	for _, q := range []string{"", "?since=abc", "?since=-5", "?since=0"} {
		resp, err := http.Get(ts.URL + DefaultPathPrefix + "/logs/queries" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%q: status %d", q, resp.StatusCode)
		}
	}
}

func TestMirrorUnreachable(t *testing.T) {
	m := NewMirror("http://127.0.0.1:1")
	if _, err := m.Sync(); err == nil {
		t.Fatal("want error")
	}
}
