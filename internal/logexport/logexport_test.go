package logexport

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/sniffer"
)

func newExporter(t *testing.T) (*Exporter, *httptest.Server) {
	t.Helper()
	e := &Exporter{
		Requests: appserver.NewRequestLog(0),
		Queries:  driver.NewQueryLog(0),
	}
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(ts.Close)
	return e, ts
}

func TestMirrorSyncRoundtrip(t *testing.T) {
	e, ts := newExporter(t)
	base := time.Now().Truncate(time.Microsecond)
	e.Queries.Append(driver.QueryLogEntry{
		LeaseID: 7, SQL: "SELECT 1",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond),
	})
	e.Requests.Append(appserver.RequestLogEntry{
		Servlet: "s", Request: "/s?a=1", Cookies: "u=alice", Post: "p=1",
		CacheKey: "site/s?g:a=1", Receive: base, Deliver: base.Add(3 * time.Millisecond),
		Status: 200, Cached: true, LeaseIDs: []int64{7},
	})

	m := NewMirror(ts.URL)
	n, err := m.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("synced %d", n)
	}
	reqs, _ := m.Requests.Since(1)
	if len(reqs) != 1 {
		t.Fatalf("requests: %+v", reqs)
	}
	r := reqs[0]
	if r.Servlet != "s" || r.CacheKey != "site/s?g:a=1" || !r.Cached ||
		len(r.LeaseIDs) != 1 || r.LeaseIDs[0] != 7 {
		t.Fatalf("entry: %+v", r)
	}
	if !r.Receive.Equal(base) || !r.Deliver.Equal(base.Add(3*time.Millisecond)) {
		t.Fatalf("timestamps: %v %v", r.Receive, r.Deliver)
	}
	qs, _ := m.Queries.Since(1)
	if len(qs) != 1 || qs[0].SQL != "SELECT 1" || qs[0].LeaseID != 7 {
		t.Fatalf("queries: %+v", qs)
	}
}

func TestMirrorIncremental(t *testing.T) {
	e, ts := newExporter(t)
	m := NewMirror(ts.URL)

	// Empty sync advances nothing and mirrors nothing.
	if n, err := m.Sync(); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		e.Queries.Append(driver.QueryLogEntry{SQL: fmt.Sprintf("q%d", i)})
	}
	if n, _ := m.Sync(); n != 3 {
		t.Fatalf("first pull: %d", n)
	}
	// No duplicates on re-sync.
	if n, _ := m.Sync(); n != 0 {
		t.Fatalf("re-pull: %d", n)
	}
	e.Queries.Append(driver.QueryLogEntry{SQL: "q3"})
	if n, _ := m.Sync(); n != 1 {
		t.Fatalf("incremental: %d", n)
	}
	qs, _ := m.Queries.Since(1)
	if len(qs) != 4 || qs[3].SQL != "q3" {
		t.Fatalf("mirrored: %+v", qs)
	}
}

func TestMirrorFeedsMapper(t *testing.T) {
	e, ts := newExporter(t)
	base := time.Now()
	e.Queries.Append(driver.QueryLogEntry{
		LeaseID: 1, SQL: "SELECT * FROM t",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond),
	})
	e.Requests.Append(appserver.RequestLogEntry{
		Servlet: "page", CacheKey: "k", Cached: true,
		Receive: base, Deliver: base.Add(5 * time.Millisecond), LeaseIDs: []int64{1},
	})

	m := NewMirror(ts.URL)
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	qm := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(m.Requests, m.Queries, qm)
	if n := mapper.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
	pm, ok := qm.Get("k")
	if !ok || len(pm.Queries) != 1 || pm.Queries[0].SQL != "SELECT * FROM t" {
		t.Fatalf("mapping: %+v", pm)
	}
}

func TestWrapRoutes(t *testing.T) {
	e, _ := newExporter(t)
	e.Queries.Append(driver.QueryLogEntry{SQL: "x"})
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "app")
	})
	ts := httptest.NewServer(e.Wrap(app))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("app route: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + DefaultPathPrefix + "/logs/queries?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type: %s", ct)
	}
}

func TestSinceParamValidation(t *testing.T) {
	e, ts := newExporter(t)
	e.Queries.Append(driver.QueryLogEntry{SQL: "a"})
	for _, q := range []string{"", "?since=abc", "?since=-5", "?since=0"} {
		resp, err := http.Get(ts.URL + DefaultPathPrefix + "/logs/queries" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%q: status %d", q, resp.StatusCode)
		}
	}
}

func TestMirrorUnreachable(t *testing.T) {
	m := NewMirror("http://127.0.0.1:1")
	if _, err := m.Sync(); err == nil {
		t.Fatal("want error")
	}
}

// TestLongPollWakesOnAppend: a ?wait= request parked at the log head must
// return as soon as an entry is appended, not after the full wait.
func TestLongPollWakesOnAppend(t *testing.T) {
	e, ts := newExporter(t)
	e.Queries.Append(driver.QueryLogEntry{SQL: "q0"})

	type result struct {
		page    logPage[wireQueryEntry]
		elapsed time.Duration
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		start := time.Now()
		var page logPage[wireQueryEntry]
		err := getJSON(context.Background(), http.DefaultClient,
			ts.URL+DefaultPathPrefix+"/logs/queries?cursor=2&wait=10s", &page)
		ch <- result{page, time.Since(start), err}
	}()
	time.Sleep(50 * time.Millisecond)
	e.Queries.Append(driver.QueryLogEntry{SQL: "q1"})

	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.page.Entries) != 1 || r.page.Entries[0].SQL != "q1" {
		t.Fatalf("long poll returned %+v", r.page)
	}
	if r.page.Next != 3 {
		t.Fatalf("next cursor %d", r.page.Next)
	}
	if r.elapsed > 5*time.Second {
		t.Fatalf("long poll blocked for the full wait: %v", r.elapsed)
	}
}

// TestLongPollTimesOutEmpty: with nothing to deliver, the wait elapses and an
// empty page comes back with the cursor unchanged.
func TestLongPollTimesOutEmpty(t *testing.T) {
	_, ts := newExporter(t)
	var page logPage[wireQueryEntry]
	start := time.Now()
	if err := getJSON(context.Background(), http.DefaultClient,
		ts.URL+DefaultPathPrefix+"/logs/queries?cursor=1&wait=50ms", &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 0 || page.Next != 1 {
		t.Fatalf("page: %+v", page)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("returned before the wait: %v", elapsed)
	}
}

// TestLongPollWaitCapped: the exporter clamps ?wait= to MaxWait, so a client
// cannot park goroutines for arbitrary durations.
func TestLongPollWaitCapped(t *testing.T) {
	e := &Exporter{
		Requests: appserver.NewRequestLog(0),
		Queries:  driver.NewQueryLog(0),
		MaxWait:  30 * time.Millisecond,
	}
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()
	start := time.Now()
	var page logPage[wireQueryEntry]
	if err := getJSON(context.Background(), http.DefaultClient,
		ts.URL+DefaultPathPrefix+"/logs/queries?cursor=1&wait=1h", &page); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait not capped: %v", elapsed)
	}
}

// TestSyncPreemptsParkedLongPoll: with Run's pumps parked on empty long
// polls, a Sync must cut the parks short and return at roundtrip latency —
// not wait out the ?wait= window — and it must observe entries appended
// before it was called (the event-driven cycle's soundness pull). Entries
// still arrive exactly once whichever side mirrors them.
func TestSyncPreemptsParkedLongPoll(t *testing.T) {
	e, ts := newExporter(t)
	m := NewMirror(ts.URL)
	m.LongPoll = 10 * time.Second
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); m.Run(stop) }()
	time.Sleep(100 * time.Millisecond) // both pumps parked at empty heads

	start := time.Now()
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Sync queued behind the parked long polls: %v", elapsed)
	}

	// Entries committed before a Sync must be mirrored by the time it
	// returns, even with the pumps re-parked in between.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		e.Queries.Append(driver.QueryLogEntry{SQL: fmt.Sprintf("q%d", i)})
	}
	start = time.Now()
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("second Sync queued behind the parks: %v", elapsed)
	}
	qs, _ := m.Queries.Since(1)
	if len(qs) != 3 {
		t.Fatalf("Sync returned before observing the log head: %+v", qs)
	}
	for i, q := range qs {
		if q.SQL != fmt.Sprintf("q%d", i) {
			t.Fatalf("entry %d: %q (duplicate or skip)", i, q.SQL)
		}
	}

	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop")
	}
}

// TestMirrorRunPumps: the background pump mirrors entries appended after it
// starts, without polling delays baked into the test (the long poll wakes
// it), and shuts down cleanly.
func TestMirrorRunPumps(t *testing.T) {
	e, ts := newExporter(t)
	m := NewMirror(ts.URL)
	m.LongPoll = 200 * time.Millisecond
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); m.Run(stop) }()

	base := time.Now()
	for i := 0; i < 5; i++ {
		e.Queries.Append(driver.QueryLogEntry{SQL: fmt.Sprintf("q%d", i),
			Receive: base, Deliver: base})
		e.Requests.Append(appserver.RequestLogEntry{Servlet: "s",
			CacheKey: fmt.Sprintf("k%d", i), Cached: true, Receive: base, Deliver: base})
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Queries.Len() < 5 || m.Requests.Len() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("pump mirrored %d queries, %d requests", m.Queries.Len(), m.Requests.Len())
		}
		time.Sleep(2 * time.Millisecond)
	}
	qs, _ := m.Queries.Since(1)
	for i, q := range qs {
		if q.SQL != fmt.Sprintf("q%d", i) {
			t.Fatalf("entry %d: %q (duplicate or skip)", i, q.SQL)
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop")
	}
}
