package webcache

import (
	"fmt"

	"repro/internal/obs"
)

// Instrument registers the cache's counters with reg as pull-style gauges
// under "<prefix>.": aggregate hit/miss/store/invalidation/eject-miss/
// eviction totals, the derived hit ratio and invalidation precision (in
// thousandths, so they survive the integer gauge), the live entry count,
// and per-shard hit/miss/invalidation/eviction counters under
// "<prefix>.shard<N>.". Gauge funcs are evaluated only at snapshot time,
// so the request path pays nothing.
func (c *Cache) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".entries", func() int64 { return int64(c.Len()) })
	reg.GaugeFunc(prefix+".shards", func() int64 { return int64(c.ShardCount()) })
	reg.GaugeFunc(prefix+".hits_total", func() int64 { return c.Stats().Hits })
	reg.GaugeFunc(prefix+".misses_total", func() int64 { return c.Stats().Misses })
	reg.GaugeFunc(prefix+".stores_total", func() int64 { return c.Stats().Stores })
	reg.GaugeFunc(prefix+".invalidations_total", func() int64 { return c.Stats().Invalidations })
	reg.GaugeFunc(prefix+".eject_misses_total", func() int64 { return c.Stats().EjectMisses })
	reg.GaugeFunc(prefix+".evictions_total", func() int64 { return c.Stats().Evictions })
	reg.GaugeFunc(prefix+".hit_ratio_milli", func() int64 {
		return int64(c.Stats().HitRatio() * 1000)
	})
	reg.GaugeFunc(prefix+".invalidation_precision_milli", func() int64 {
		return int64(c.Stats().InvalidationPrecision() * 1000)
	})
	for i := 0; i < c.ShardCount(); i++ {
		i := i
		sp := fmt.Sprintf("%s.shard%d.", prefix, i)
		reg.GaugeFunc(sp+"hits_total", func() int64 { return c.StatsOfShard(i).Hits })
		reg.GaugeFunc(sp+"misses_total", func() int64 { return c.StatsOfShard(i).Misses })
		reg.GaugeFunc(sp+"invalidations_total", func() int64 { return c.StatsOfShard(i).Invalidations })
		reg.GaugeFunc(sp+"evictions_total", func() int64 { return c.StatsOfShard(i).Evictions })
	}
	// Per-servlet breakdown under "<prefix>.servlet.<name>.": gauges appear
	// lazily as the proxy observes each servlet's first lookup, so the
	// fragment-vs-page hit-ratio win is readable per servlet at
	// /debug/metrics without pre-declaring the application. The hook fires
	// outside the cache's servlet lock (see NoteServlet), so registering —
	// which takes the registry lock — cannot deadlock against a concurrent
	// Snapshot evaluating these gauges.
	c.OnNewServlet(func(name string) {
		sp := prefix + ".servlet." + name + "."
		reg.GaugeFunc(sp+"hits_total", func() int64 { return c.StatsOfServlet(name).Hits })
		reg.GaugeFunc(sp+"misses_total", func() int64 { return c.StatsOfServlet(name).Misses })
		reg.GaugeFunc(sp+"hit_ratio_milli", func() int64 {
			return int64(c.StatsOfServlet(name).HitRatio() * 1000)
		})
	})
}
