package webcache

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func keyFor(t *testing.T, target string, cookies ...*http.Cookie) string {
	t.Helper()
	r := httptest.NewRequest("GET", target, nil)
	for _, c := range cookies {
		r.AddCookie(c)
	}
	return cacheKeyForRequest(r)
}

// Distinct requests must never share a request-derived cache key: a collision
// serves one page's cached bytes to a different request.
func TestCacheKeyEscapesComponents(t *testing.T) {
	cases := [][2]string{
		// %26 is a literal '&' inside b's value, not a separator.
		{"http://h/p?a=1&b=2", "http://h/p?a=1%26b=2"},
		// %3D is a literal '=' inside the value.
		{"http://h/p?a=1%3Db=2", "http://h/p?a=1&b=2"},
		// Separator smuggled through a parameter name.
		{"http://h/p?a%26b=1", "http://h/p?a=1&b=1"},
	}
	for _, c := range cases {
		k0, k1 := keyFor(t, c[0]), keyFor(t, c[1])
		if k0 == k1 {
			t.Errorf("requests %q and %q collide on key %q", c[0], c[1], k0)
		}
	}
	// Same query in different parameter order must still share a key.
	if a, b := keyFor(t, "http://h/p?a=1&b=2"), keyFor(t, "http://h/p?b=2&a=1"); a != b {
		t.Errorf("parameter order changed the key: %q != %q", a, b)
	}
}

func TestCacheKeyEscapesCookies(t *testing.T) {
	// A ';' in a cookie value must not read as a cookie separator, and a '#'
	// must not read as the query/cookie section divider.
	a := keyFor(t, "http://h/p", &http.Cookie{Name: "s", Value: "x;u=admin"})
	b := keyFor(t, "http://h/p", &http.Cookie{Name: "s", Value: "x"}, &http.Cookie{Name: "u", Value: "admin"})
	if a == b {
		t.Errorf("cookie value with ';' collides with two cookies: %q", a)
	}
	c := keyFor(t, "http://h/p?q=x%23s=1")
	d := keyFor(t, "http://h/p?q=x", &http.Cookie{Name: "s", Value: "1"})
	if c == d {
		t.Errorf("query value with '#' collides with a cookie: %q", c)
	}
}
