package webcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// twoNodeMap pins the whole keyspace on ownerID: one slot, no replicas —
// the deterministic fixture for forwarding tests (real maps hash per
// slot, which would depend on the httptest server's random port).
func twoNodeMap(ownerID, url1, url2 string) *cluster.Map {
	return &cluster.Map{
		Version: 1,
		Slots:   []cluster.Assignment{{Primary: ownerID}},
		Nodes: []cluster.NodeInfo{
			{ID: "n1", URL: url1},
			{ID: "n2", URL: url2},
		},
	}
}

func TestClusterForwardsToOwner(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()

	cache1, cache2 := NewCache(0), NewCache(0)
	p1, p2 := NewProxy(origin.URL, cache1), NewProxy(origin.URL, cache2)
	srv1, srv2 := httptest.NewServer(p1), httptest.NewServer(p2)
	defer srv1.Close()
	defer srv2.Close()

	// Every key belongs to n2, so a request hitting n1 must take one hop.
	m := twoNodeMap("n2", srv1.URL, srv2.URL)
	node1 := NewClusterNode("n1", cluster.NewView(m), cache1)
	node2 := NewClusterNode("n2", cluster.NewView(m), cache2)
	p1.Cluster, p2.Cluster = node1, node2

	resp, err := http.Get(srv1.URL + "/page?id=7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "page 7") {
		t.Fatalf("body %q", body)
	}
	if got := node1.forwards.Load(); got != 1 {
		t.Fatalf("node1 forwards = %d, want 1", got)
	}
	// The entry lives on the owner, not the node that happened to take the
	// request.
	if cache2.Len() != 1 {
		t.Fatalf("owner cache holds %d entries, want 1", cache2.Len())
	}
	if cache1.Len() != 0 {
		t.Fatalf("non-owner cache holds %d entries, want 0", cache1.Len())
	}

	// A second request through n1 is a hit served off n2's cache: the
	// origin is not consulted again.
	http.Get(srv1.URL + "/page?id=7")
	if originHits != 1 {
		t.Fatalf("origin hits = %d, want 1 (second request should hit the owner's cache)", originHits)
	}
}

func TestClusterForwardedRequestServedLocally(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()

	cache := NewCache(0)
	p := NewProxy(origin.URL, cache)
	srv := httptest.NewServer(p)
	defer srv.Close()
	// This node owns nothing — but a request marked forwarded must be
	// served here anyway (one hop max, never a loop).
	p.Cluster = NewClusterNode("n1", cluster.NewView(twoNodeMap("n2", srv.URL, "http://127.0.0.1:1")), cache)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/page?id=1", nil)
	req.Header.Set(ForwardedHeader, "n2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "page 1") {
		t.Fatalf("body %q", body)
	}
	if p.Cluster.forwards.Load() != 0 {
		t.Fatal("forwarded request was forwarded again")
	}
	if originHits != 1 {
		t.Fatalf("origin hits = %d", originHits)
	}
}

func TestClusterOwnerDownFallsBackToOriginWithoutStoring(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()

	cache := NewCache(0)
	p := NewProxy(origin.URL, cache)
	srv := httptest.NewServer(p)
	defer srv.Close()
	// The owner URL answers nothing: the forward fails and the node serves
	// from the origin itself — but must NOT store, because it would never
	// see the key's ejects.
	node := NewClusterNode("n1", cluster.NewView(twoNodeMap("n2", srv.URL, "http://127.0.0.1:1")), cache)
	p.Cluster = node

	resp, err := http.Get(srv.URL + "/page?id=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "page 3") {
		t.Fatalf("body %q", body)
	}
	if node.forwardFails.Load() == 0 {
		t.Fatal("forward failure not counted")
	}
	if cache.Len() != 0 {
		t.Fatalf("fallback stored %d entries off-owner", cache.Len())
	}
}

func TestClusterServeDebug(t *testing.T) {
	cache := NewCache(0)
	m := cluster.NewMap(8, []cluster.NodeInfo{{ID: "n1", URL: "http://a"}})
	node := NewClusterNode("n1", cluster.NewView(m), cache)
	srv := httptest.NewServer(http.HandlerFunc(node.ServeDebug))
	defer srv.Close()

	// GET returns the report and the map.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.DebugState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Report.Node != "n1" || st.Map == nil || st.Map.Version != 1 {
		t.Fatalf("state = %+v", st)
	}
	if len(st.Report.SlotLoad) != 8 {
		t.Fatalf("slot load has %d slots", len(st.Report.SlotLoad))
	}

	post := func(m *cluster.Map) (int, string) {
		body, _ := json.Marshal(m)
		resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// A newer map installs; the same version again is ignored.
	v2 := m.Clone()
	v2.Version = 2
	if code, body := post(v2); code != 200 || !strings.Contains(body, "installed version 2") {
		t.Fatalf("install: %d %q", code, body)
	}
	if code, body := post(v2); code != 200 || !strings.Contains(body, "ignored") {
		t.Fatalf("stale install: %d %q", code, body)
	}
	if node.View.Map().Version != 2 {
		t.Fatalf("view at %d", node.View.Map().Version)
	}

	// A map with a different slot count is rejected outright.
	bad := cluster.NewMap(16, m.Nodes)
	bad.Version = 3
	if code, _ := post(bad); code != http.StatusBadRequest {
		t.Fatalf("slot mismatch accepted: %d", code)
	}
}

func TestClusterInstallDropsUnownedEntries(t *testing.T) {
	cache := NewCache(0)
	peers := []cluster.NodeInfo{{ID: "n1", URL: "http://a"}, {ID: "n2", URL: "http://b"}}
	m := cluster.NewMap(8, peers[:1]) // n1 owns everything
	node := NewClusterNode("n1", cluster.NewView(m), cache)

	// Two keys in different slots under the grown map.
	grown := m.WithNodes(peers)
	var kept, lost string
	for i := 0; i < 256 && (kept == "" || lost == ""); i++ {
		key := fmt.Sprintf("host/page%d?id=1", i)
		if grown.IsOwner(grown.Slot(cluster.RouteKey(key)), "n1") {
			kept = key
		} else {
			lost = key
		}
	}
	if kept == "" || lost == "" {
		t.Fatal("could not find keys on both sides of the split")
	}
	cache.Put(&Entry{Key: kept, Body: []byte("k")})
	cache.Put(&Entry{Key: lost, Body: []byte("l")})

	srv := httptest.NewServer(http.HandlerFunc(node.ServeDebug))
	defer srv.Close()
	body, _ := json.Marshal(grown)
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if _, ok := cache.Peek(kept); !ok {
		t.Fatal("still-owned entry was dropped")
	}
	if _, ok := cache.Peek(lost); ok {
		t.Fatal("entry of a slot this node lost is still cached")
	}
}

func TestClusterRouteRotatesAcrossOwners(t *testing.T) {
	m := &cluster.Map{
		Version: 1,
		Slots:   []cluster.Assignment{{Primary: "n2", Replicas: []string{"n3"}}},
		Nodes: []cluster.NodeInfo{
			{ID: "n1", URL: "http://a"},
			{ID: "n2", URL: "http://b"},
			{ID: "n3", URL: "http://c"},
		},
	}
	node := NewClusterNode("n1", cluster.NewView(m), nil)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		r := httptest.NewRequest(http.MethodGet, "http://host/page", nil)
		peer, local := node.Route(r)
		if local {
			t.Fatal("non-owner routed local")
		}
		seen[peer]++
	}
	if len(seen) != 2 {
		t.Fatalf("forwards went to %v, want both owners", seen)
	}
}
