package webcache

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Model-based property test: the cache is compared against a trivial model
// (map + recency list) across random operation sequences.
type cacheOp struct {
	kind    int // 0 put, 1 get, 2 invalidate, 3 invalidateServlet, 4 alias+get
	key     int
	servlet int
}

func TestQuickCacheMatchesModel(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			n := 5 + r.Intn(120)
			ops := make([]cacheOp, n)
			for i := range ops {
				ops[i] = cacheOp{kind: r.Intn(5), key: r.Intn(12), servlet: r.Intn(3)}
			}
			vals[0] = reflect.ValueOf(ops)
			vals[1] = reflect.ValueOf(2 + r.Intn(8)) // capacity
		},
	}
	prop := func(ops []cacheOp, capacity int) bool {
		c := NewCache(capacity)
		// Model: key → servlet; recency as slice (front = most recent).
		model := map[string]string{}
		var recency []string
		touch := func(k string) {
			for i, x := range recency {
				if x == k {
					recency = append(recency[:i], recency[i+1:]...)
					break
				}
			}
			recency = append([]string{k}, recency...)
		}
		remove := func(k string) {
			delete(model, k)
			for i, x := range recency {
				if x == k {
					recency = append(recency[:i], recency[i+1:]...)
					break
				}
			}
		}
		for _, op := range ops {
			k := fmt.Sprintf("k%d", op.key)
			sv := fmt.Sprintf("s%d", op.servlet)
			switch op.kind {
			case 0:
				c.Put(&Entry{Key: k, Servlet: sv, Body: []byte(k)})
				model[k] = sv
				touch(k)
				if capacity > 0 && len(recency) > capacity {
					victim := recency[len(recency)-1]
					remove(victim)
				}
			case 1:
				e, ok := c.Get(k)
				_, mok := model[k]
				if ok != mok {
					return false
				}
				if ok {
					if string(e.Body) != k {
						return false
					}
					touch(k)
				}
			case 2:
				got := c.Invalidate(k)
				_, mok := model[k]
				if got != mok {
					return false
				}
				remove(k)
			case 3:
				n := c.InvalidateServlet(sv)
				want := 0
				var victims []string
				for k2, s2 := range model {
					if s2 == sv {
						want++
						victims = append(victims, k2)
					}
				}
				for _, v := range victims {
					remove(v)
				}
				if n != want {
					return false
				}
			case 4:
				c.Alias("alias-"+k, k)
				e, ok := c.Get(c.Resolve("alias-" + k))
				_, mok := model[k]
				if ok != mok {
					return false
				}
				if ok {
					if e.Key != k {
						return false
					}
					touch(k)
				}
			}
			if c.Len() != len(model) {
				return false
			}
			if capacity > 0 && c.Len() > capacity {
				return false
			}
		}
		// Final: every model key present, every other key absent.
		for k := range model {
			if _, ok := c.Peek(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAliasLifecycle: aliases never outlive their target entries.
func TestQuickAliasLifecycle(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCache(4)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", r.Intn(10))
			switch r.Intn(3) {
			case 0:
				c.Put(&Entry{Key: k})
				c.Alias("a-"+k, k)
			case 1:
				c.Invalidate(k)
			default:
				// A resolved alias must point to a live entry or resolve to
				// itself (identity for unknown keys).
				target := c.Resolve("a-" + k)
				if target != "a-"+k { // alias exists
					if _, ok := c.Peek(target); !ok {
						return false // dangling alias
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
