package webcache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

func TestCachePutGetLRU(t *testing.T) {
	c := NewCache(2)
	c.Put(&Entry{Key: "a", Body: []byte("A")})
	c.Put(&Entry{Key: "b", Body: []byte("B")})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put(&Entry{Key: "c", Body: []byte("C")}) // evicts b (a was just touched)
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("a should survive")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "k", Body: []byte("x"), Servlet: "s"})
	if !c.Invalidate("k") {
		t.Fatal("invalidate should report removal")
	}
	if c.Invalidate("k") {
		t.Fatal("second invalidate should be false")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
}

func TestCacheInvalidateServlet(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "k1", Servlet: "s1"})
	c.Put(&Entry{Key: "k2", Servlet: "s1"})
	c.Put(&Entry{Key: "k3", Servlet: "s2"})
	if n := c.InvalidateServlet("s1"); n != 2 {
		t.Fatalf("removed %d", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
	if n := c.InvalidateServlet("missing"); n != 0 {
		t.Fatalf("removed %d", n)
	}
}

func TestCacheInvalidatePrefix(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "site/product?id=1"})
	c.Put(&Entry{Key: "site/product?id=2"})
	c.Put(&Entry{Key: "site/home"})
	if n := c.InvalidatePrefix("site/product"); n != 2 {
		t.Fatalf("removed %d", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheOverwriteSameKey(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "k", Body: []byte("v1"), Servlet: "s1"})
	c.Put(&Entry{Key: "k", Body: []byte("v2"), Servlet: "s2"})
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
	e, _ := c.Peek("k")
	if string(e.Body) != "v2" {
		t.Fatalf("body %q", e.Body)
	}
	// Old servlet association must be gone.
	if n := c.InvalidateServlet("s1"); n != 0 {
		t.Fatalf("stale servlet ref removed %d", n)
	}
	if n := c.InvalidateServlet("s2"); n != 1 {
		t.Fatalf("new servlet ref removed %d", n)
	}
}

func TestStatsHitRatio(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "k"})
	c.Get("k")
	c.Get("k")
	c.Get("missing")
	got := c.Stats().HitRatio()
	if got < 0.66 || got > 0.67 {
		t.Fatalf("ratio %f", got)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Fatal("reset failed")
	}
}

func TestKeysOrder(t *testing.T) {
	c := NewCache(0)
	c.Put(&Entry{Key: "a"})
	c.Put(&Entry{Key: "b"})
	c.Get("a")
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys: %v", keys)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear failed")
	}
}

// newOrigin builds a fake app server whose responses are cacheable and
// counts the requests reaching it.
func newOrigin(t *testing.T, hits *int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(hits, 1)
		id := r.URL.Query().Get("id")
		w.Header().Set("Content-Type", "text/html")
		w.Header().Set(keyHeader, "origin/page?id="+id)
		w.Header().Set(servletHeader, "page")
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		fmt.Fprintf(w, "page %s v%d", id, atomic.LoadInt64(hits))
	}))
}

func TestProxyCachesAndServesHits(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()

	get := func(url string) (string, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get(HitHeader)
	}

	b1, h1 := get(proxy.URL + "/page?id=1")
	if h1 != "miss" {
		t.Fatalf("first: %s", h1)
	}
	b2, h2 := get(proxy.URL + "/page?id=1")
	if h2 != "hit" || b2 != b1 {
		t.Fatalf("second: %s %q vs %q", h2, b2, b1)
	}
	if atomic.LoadInt64(&originHits) != 1 {
		t.Fatalf("origin hits: %d", originHits)
	}
	_, h3 := get(proxy.URL + "/page?id=2")
	if h3 != "miss" {
		t.Fatalf("different key: %s", h3)
	}
}

func TestProxyDoesNotCacheNoCacheResponses(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-cache")
		fmt.Fprint(w, "private stuff")
	}))
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()
	http.Get(proxy.URL + "/x")
	http.Get(proxy.URL + "/x")
	if cache.Len() != 0 {
		t.Fatalf("cached %d entries", cache.Len())
	}
}

func TestProxyDoesNotCacheUnmarkedResponses(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "no cache-control at all")
	}))
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()
	http.Get(proxy.URL + "/x")
	if cache.Len() != 0 {
		t.Fatalf("cached %d entries", cache.Len())
	}
}

func TestEjectRequest(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()

	http.Get(proxy.URL + "/page?id=1")
	if cache.Len() != 1 {
		t.Fatalf("cache len %d", cache.Len())
	}
	if err := Eject(nil, proxy.URL, "origin/page?id=1"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatal("entry not ejected")
	}
	// Next request goes back to the origin.
	resp, _ := http.Get(proxy.URL + "/page?id=1")
	resp.Body.Close()
	if got := resp.Header.Get(HitHeader); got != "miss" {
		t.Fatalf("after eject: %s", got)
	}
	if atomic.LoadInt64(&originHits) != 2 {
		t.Fatalf("origin hits: %d", originHits)
	}
}

func TestEjectByServletHeader(t *testing.T) {
	var originHits int64
	origin := newOrigin(t, &originHits)
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()
	http.Get(proxy.URL + "/page?id=1")
	http.Get(proxy.URL + "/page?id=2")

	req, _ := http.NewRequest("GET", proxy.URL+"/", nil)
	req.Header.Set("Cache-Control", "eject")
	req.Header.Set(servletHeader, "page")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ejected 2\n" {
		t.Fatalf("body: %q", body)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache len %d", cache.Len())
	}
}

func TestProxyBadOrigin(t *testing.T) {
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy("http://127.0.0.1:1", cache)) // nothing listens
	defer proxy.Close()
	resp, err := http.Get(proxy.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestIsEjectParsing(t *testing.T) {
	mk := func(cc string) *http.Request {
		r, _ := http.NewRequest("GET", "http://x/", nil)
		if cc != "" {
			r.Header.Set("Cache-Control", cc)
		}
		return r
	}
	cases := map[string]bool{
		"eject":           true,
		"no-cache, eject": true,
		" eject ":         true,
		"ejecting":        false,
		"no-cache":        false,
		"":                false,
	}
	for cc, want := range cases {
		if got := isEject(mk(cc)); got != want {
			t.Errorf("isEject(%q) = %v", cc, got)
		}
	}
}

func TestConcurrentCacheAccess(t *testing.T) {
	c := NewCache(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := "k" + strconv.Itoa((g*31+i)%100)
				if i%3 == 0 {
					c.Put(&Entry{Key: k, Servlet: "s" + strconv.Itoa(i%5)})
				} else if i%7 == 0 {
					c.Invalidate(k)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

// TestCookiePersonalizationNotLeaked: pages keyed by cookie must never be
// served to a request carrying a different cookie, even though the proxy's
// request-derived key is learned before the origin's key spec is known.
func TestCookiePersonalizationNotLeaked(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		user := "anon"
		if c, err := r.Cookie("user"); err == nil {
			user = c.Value
		}
		w.Header().Set(keyHeader, "site/home?c:user="+user)
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		fmt.Fprintf(w, "hello %s", user)
	}))
	defer origin.Close()
	proxy := httptest.NewServer(NewProxy(origin.URL, NewCache(0)))
	defer proxy.Close()

	get := func(user string) (string, string) {
		req, _ := http.NewRequest("GET", proxy.URL+"/home", nil)
		if user != "" {
			req.AddCookie(&http.Cookie{Name: "user", Value: user})
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get(HitHeader)
	}

	if body, _ := get("alice"); body != "hello alice" {
		t.Fatalf("alice: %q", body)
	}
	// Bob must NOT receive Alice's cached page.
	body, state := get("bob")
	if body != "hello bob" {
		t.Fatalf("bob got %q (%s) — personalization leak", body, state)
	}
	// Alice's second visit is a hit on her own page.
	body, state = get("alice")
	if state != "hit" || body != "hello alice" {
		t.Fatalf("alice repeat: %q (%s)", body, state)
	}
	// And bob's too, under his own key.
	body, state = get("bob")
	if state != "hit" || body != "hello bob" {
		t.Fatalf("bob repeat: %q (%s)", body, state)
	}
}

// TestPostBypassesCache: POSTs are never answered from the cache and never
// stored.
func TestPostBypassesCache(t *testing.T) {
	var hits int64
	origin := newOrigin(t, &hits)
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache))
	defer proxy.Close()

	// Warm with a GET.
	http.Get(proxy.URL + "/page?id=1")
	if cache.Len() != 1 {
		t.Fatalf("len: %d", cache.Len())
	}
	// POST to the same URL must reach the origin, not the cache.
	resp, err := http.Post(proxy.URL+"/page?id=1", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(HitHeader); got != "miss" {
		t.Fatalf("post: %s", got)
	}
	if atomic.LoadInt64(&hits) != 2 {
		t.Fatalf("origin hits: %d", hits)
	}
	if cache.Len() != 1 {
		t.Fatalf("post stored: len %d", cache.Len())
	}
}
