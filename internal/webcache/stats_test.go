package webcache

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestStatsRatiosGuardZeroDenominator(t *testing.T) {
	var s Stats
	for name, v := range map[string]float64{
		"HitRatio":              s.HitRatio(),
		"InvalidationPrecision": s.InvalidationPrecision(),
		"EvictionRate":          s.EvictionRate(),
	} {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("%s on zero stats: %g", name, v)
		}
	}
}

func TestEjectMissCounting(t *testing.T) {
	c := NewCache(10)
	c.Put(&Entry{Key: "a", Body: []byte("x")})
	c.Put(&Entry{Key: "b", Body: []byte("y")})

	if !c.Invalidate("a") {
		t.Fatal("a should have been present")
	}
	if c.Invalidate("ghost") {
		t.Fatal("ghost should not have been present")
	}
	if n := c.InvalidateMany([]string{"b", "gone1", "gone2"}); n != 1 {
		t.Fatalf("InvalidateMany removed %d", n)
	}

	st := c.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations: %d", st.Invalidations)
	}
	if st.EjectMisses != 3 {
		t.Fatalf("eject misses: %d", st.EjectMisses)
	}
	if p := st.InvalidationPrecision(); math.Abs(p-0.4) > 1e-9 {
		t.Fatalf("precision: %g", p)
	}
}

func TestResetStatsClearsEverything(t *testing.T) {
	c := NewCacheSharded(4, 4)
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		c.Put(&Entry{Key: k, Body: []byte(k)})
	}
	c.Get("a")
	c.Get("nope")
	c.Invalidate("b")
	c.Invalidate("ghost")

	before := c.Stats()
	if before.Stores == 0 || before.Evictions == 0 || before.EjectMisses == 0 {
		t.Fatalf("expected activity before reset: %+v", before)
	}
	c.ResetStats()
	if after := c.Stats(); after != (Stats{}) {
		t.Fatalf("reset left counters: %+v", after)
	}
	for i := 0; i < c.ShardCount(); i++ {
		if ss := c.StatsOfShard(i); ss != (Stats{}) {
			t.Fatalf("shard %d not reset: %+v", i, ss)
		}
	}
}

func TestStatsOfShardSumsToAggregate(t *testing.T) {
	c := NewCacheSharded(0, 4)
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		c.Put(&Entry{Key: k, Body: []byte(k)})
		c.Get(k)
	}
	c.Get("missing")
	var sum Stats
	for i := 0; i < c.ShardCount(); i++ {
		ss := c.StatsOfShard(i)
		sum.Hits += ss.Hits
		sum.Misses += ss.Misses
		sum.Stores += ss.Stores
		sum.Invalidations += ss.Invalidations
		sum.EjectMisses += ss.EjectMisses
		sum.Evictions += ss.Evictions
	}
	if agg := c.Stats(); sum != agg {
		t.Fatalf("per-shard sum %+v != aggregate %+v", sum, agg)
	}
}

func TestCacheInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCacheSharded(0, 2)
	c.Instrument(reg, "webcache")
	c.Put(&Entry{Key: "a", Body: []byte("x")})
	c.Get("a")
	c.Get("a")
	c.Get("miss")

	s := reg.Snapshot()
	if s.Gauges["webcache.hits_total"] != 2 || s.Gauges["webcache.misses_total"] != 1 {
		t.Fatalf("hit/miss gauges: %+v", s.Gauges)
	}
	if s.Gauges["webcache.entries"] != 1 {
		t.Fatalf("entries gauge: %d", s.Gauges["webcache.entries"])
	}
	// hits/(hits+misses) = 2/3 ≈ 666 milli-units.
	if hr := s.Gauges["webcache.hit_ratio_milli"]; hr != 666 {
		t.Fatalf("hit ratio milli: %d", hr)
	}
	var perShardHits int64
	for i := 0; i < c.ShardCount(); i++ {
		perShardHits += s.Gauges[shardGaugeName("webcache", i, "hits_total")]
	}
	if perShardHits != 2 {
		t.Fatalf("per-shard hits: %d", perShardHits)
	}
}

// shardGaugeName mirrors Instrument's per-shard naming.
func shardGaugeName(prefix string, shard int, field string) string {
	return prefix + ".shard" + string(rune('0'+shard)) + "." + field
}
