package webcache

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestShardedCapacitySplit: capacity is divided across shards with nothing
// lost to rounding, and the total Len never exceeds it.
func TestShardedCapacitySplit(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{100, 8}, {101, 8}, {7, 16}, {1, 4}, {64, 3},
	} {
		c := NewCacheSharded(tc.capacity, tc.shards)
		total := 0
		for _, s := range c.shards {
			if s.capacity == 0 {
				t.Fatalf("cap=%d shards=%d: a shard got zero capacity", tc.capacity, tc.shards)
			}
			total += s.capacity
		}
		if total != tc.capacity {
			t.Fatalf("cap=%d shards=%d: shard capacities sum to %d", tc.capacity, tc.shards, total)
		}
		for i := 0; i < 4*tc.capacity; i++ {
			c.Put(&Entry{Key: fmt.Sprintf("k%d", i)})
		}
		if c.Len() > tc.capacity {
			t.Fatalf("cap=%d shards=%d: Len %d exceeds capacity", tc.capacity, tc.shards, c.Len())
		}
	}
	// Small capacities collapse to one shard: exact global LRU preserved.
	if n := NewCache(8).ShardCount(); n != 1 {
		t.Fatalf("capacity 8 should use 1 shard, got %d", n)
	}
	// Unbounded caches shard freely.
	if n := NewCacheSharded(0, 8).ShardCount(); n != 8 {
		t.Fatalf("unbounded cache should honour requested shards, got %d", n)
	}
}

// TestInvalidateMany: batch invalidation removes exactly the present keys
// and reports the count.
func TestInvalidateMany(t *testing.T) {
	c := NewCacheSharded(0, 8)
	for i := 0; i < 50; i++ {
		c.Put(&Entry{Key: fmt.Sprintf("k%d", i), Servlet: "s"})
	}
	n := c.InvalidateMany([]string{"k0", "k7", "k49", "missing", "k7"})
	if n != 3 {
		t.Fatalf("removed %d, want 3", n)
	}
	if c.Len() != 47 {
		t.Fatalf("len %d, want 47", c.Len())
	}
	if _, ok := c.Get("k7"); ok {
		t.Fatal("k7 should be gone")
	}
	if got := c.Stats().Invalidations; got != 3 {
		t.Fatalf("invalidation counter %d, want 3", got)
	}
	// Aliases to invalidated keys die with them.
	c.Alias("req-k1", "k1")
	c.InvalidateMany([]string{"k1"})
	if got := c.Resolve("req-k1"); got != "req-k1" {
		t.Fatalf("alias survived invalidation: %q", got)
	}
}

// TestShardedConcurrentMixedOps hammers every cache operation from many
// goroutines on a multi-shard cache; run under -race this is the data-race
// proof for the sharded rewrite.
func TestShardedConcurrentMixedOps(t *testing.T) {
	c := NewCacheSharded(512, 8)
	if c.ShardCount() != 8 {
		t.Fatalf("want 8 shards, got %d", c.ShardCount())
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key-%d", rng.Intn(600))
				switch rng.Intn(10) {
				case 0:
					c.Invalidate(k)
				case 1:
					c.InvalidateMany([]string{k, fmt.Sprintf("key-%d", rng.Intn(600))})
				case 2:
					c.Alias("alias-"+k, k)
				case 3:
					c.Resolve("alias-" + k)
				case 4:
					c.Keys()
				case 5:
					c.Stats()
				case 6:
					c.InvalidateServlet(fmt.Sprintf("s%d", rng.Intn(4)))
				default:
					if _, ok := c.Get(k); !ok {
						c.Put(&Entry{Key: k, Body: []byte("v"), Servlet: fmt.Sprintf("s%d", rng.Intn(4))})
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 512 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
	// The cache is still coherent: every surviving key resolves and gets.
	for _, k := range c.Keys() {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("Keys() listed %q but Peek misses", k)
		}
	}
}

// TestKeysGlobalRecencyAcrossShards: Keys() must interleave entries from
// different shards in true global recency order, not per-shard order.
func TestKeysGlobalRecencyAcrossShards(t *testing.T) {
	c := NewCacheSharded(0, 4)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range keys {
		c.Put(&Entry{Key: k})
	}
	// Touch in a scrambled order; recency becomes the reverse of it.
	touch := []string{"c", "a", "f", "b", "e", "d"}
	for _, k := range touch {
		c.Get(k)
	}
	got := c.Keys()
	want := []string{"d", "e", "b", "f", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("keys: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("global recency broken: got %v want %v", got, want)
		}
	}
}

// TestBatchEjectProtocol: one POST with the batch header and a newline key
// list removes every named page and answers with the count.
func TestBatchEjectProtocol(t *testing.T) {
	cache := NewCacheSharded(0, 4)
	for i := 0; i < 20; i++ {
		cache.Put(&Entry{Key: fmt.Sprintf("p%d", i), Body: []byte("x")})
	}
	srv := httptest.NewServer(NewProxy("", cache))
	defer srv.Close()

	if err := EjectKeys(nil, srv.URL, []string{"p1", "p5", "p19", "ghost"}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 17 {
		t.Fatalf("len %d, want 17", cache.Len())
	}
	for _, k := range []string{"p1", "p5", "p19"} {
		if _, ok := cache.Peek(k); ok {
			t.Fatalf("%s survived batch eject", k)
		}
	}
	// Empty batches are a no-op without a request.
	if err := EjectKeys(nil, srv.URL, nil); err != nil {
		t.Fatal(err)
	}

	// The response body reports how many pages were actually removed.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/",
		strings.NewReader("p2\np3\nghost\n"))
	req.Header.Set("Cache-Control", "eject")
	req.Header.Set(batchHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var n int
	if _, err := fmt.Fscanf(resp.Body, "ejected %d", &n); err != nil || n != 2 {
		t.Fatalf("response: n=%d err=%v", n, err)
	}
}

// TestSingleEjectStillWorks: the legacy one-key header protocol coexists
// with batching.
func TestSingleEjectStillWorks(t *testing.T) {
	cache := NewCacheSharded(0, 4)
	cache.Put(&Entry{Key: "solo", Body: []byte("x")})
	srv := httptest.NewServer(NewProxy("", cache))
	defer srv.Close()
	if err := Eject(nil, srv.URL, "solo"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatal("single eject failed")
	}
}
