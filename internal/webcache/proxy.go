package webcache

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fragment"
	"repro/internal/httpx"
	"repro/internal/trace"
)

// Header names shared with the application server. Kept as local constants
// so the cache stays deployable without importing the app server (the
// paper's independence requirement, §2.1).
const (
	keyHeader     = "X-Cacheportal-Key"
	servletHeader = "X-Cacheportal-Servlet"
	// HitHeader marks responses served from this cache.
	HitHeader = "X-Cacheportal-Cache"
	// batchHeader marks an eject request whose body carries many keys,
	// newline-separated, so one round trip invalidates a whole batch.
	batchHeader = "X-Cacheportal-Batch"
)

// TraceHeader carries pipeline trace contexts on an eject request
// ("trace:span,trace:span", trace.FormatContexts): the invalidator lists
// the update contexts behind the batch, and this cache records the
// terminal webcache.eject span for each — the last hop of the
// commit-to-eject chain, in the cache's own tracer.
const TraceHeader = "X-Cacheportal-Trace"

// Proxy is the caching reverse proxy. It forwards misses to Origin,
// stores responses whose Cache-Control carries owner="cacheportal", and
// processes `Cache-Control: eject` invalidation requests (§4.2.4).
type Proxy struct {
	// Origin is the downstream base URL, e.g. "http://127.0.0.1:8080".
	Origin string
	// Cache is the page store.
	Cache *Cache
	// Client performs origin requests; the shared timeout-bearing client
	// (httpx.Default) when nil, so a hung origin turns into a bounded 502
	// instead of a goroutine pinned forever.
	Client *http.Client
	// HitDelay/MissExtraDelay optionally add artificial latency, used by
	// experiments to model cache and network distance.
	HitDelay       time.Duration
	MissExtraDelay time.Duration

	// MaxAge, when positive, expires entries older than this — the
	// time-based refresh of Oracle9i's web cache that the paper's
	// introduction critiques: it re-computes pages whether or not they
	// changed, yet still serves stale content for up to MaxAge. Zero means
	// entries live until invalidated (the CachePortal model).
	MaxAge time.Duration

	// Fragments switches the proxy to fragment-level caching and edge
	// assembly: full-page misses negotiate composite responses with the
	// origin (template + fragments, each stored under its own key), hits
	// assemble the page from cached fragments, and a missing fragment is
	// fetched alone — so a personalized page costs one private miss plus N
	// shared hits instead of a whole-page private miss. Off, the proxy
	// behaves exactly as before.
	Fragments bool
	// CookieAllow is the per-servlet cookie allowlist for request-derived
	// keys: for a servlet with an entry, only the listed cookie names
	// contribute to the pre-alias lookup key (an empty list means no cookie
	// does). Servlets without an entry keep the safe default — every cookie
	// keys, because until the canonical-key alias is learned the proxy
	// cannot know a cookie is ignored, and omitting one could let a
	// personalized page answer another user's request. The allowlist is the
	// operator's declaration that the listed servlets ignore everything
	// else (e.g. tracking cookies on a fully-shared page).
	CookieAllow map[string][]string

	// Tracer, when set, closes pipeline traces: an eject request carrying
	// TraceHeader gets a terminal webcache.eject span per listed context.
	Tracer *trace.Tracer

	// Cluster, when set, makes this proxy one node of the distributed
	// cache tier: GETs for slots this node doesn't own are forwarded one
	// hop to the owner, /debug/cluster serves and accepts the membership
	// view, and per-slot request counters feed the shard manager. Nil
	// keeps single-node behavior byte-identical.
	Cluster *ClusterNode
}

// NewProxy creates a proxy in front of origin.
func NewProxy(origin string, cache *Cache) *Proxy {
	return &Proxy{Origin: origin, Cache: cache}
}

func (p *Proxy) client() *http.Client {
	return httpx.Client(p.Client)
}

// ServeHTTP implements the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Invalidation request: an otherwise-normal request whose
	// Cache-Control contains the extended "eject" directive.
	if isEject(r) {
		// Ejects are always handled locally: in stream mode every node
		// applies the full eject feed; in routed-push mode the invalidator
		// already aimed at this node's keys.
		p.serveEject(w, r)
		return
	}

	if p.Cluster != nil {
		if r.URL.Path == cluster.DebugClusterPath {
			p.Cluster.ServeDebug(w, r)
			return
		}
		if r.Method == http.MethodGet && r.Header.Get(ForwardedHeader) == "" {
			if peer, local := p.Cluster.Route(r); !local {
				if p.forwardPeer(w, r, peer) {
					return
				}
				// Owner unreachable: answer from the origin ourselves, but
				// don't store — this node doesn't receive the key's ejects,
				// so a stored copy could go permanently stale.
				p.forwardStore(w, r, "", false)
				return
			}
		}
	}

	// Only GETs are served from (or admitted to) the cache.
	if r.Method != http.MethodGet {
		p.forward(w, r, "")
		return
	}
	servlet := servletFromPath(r.URL.Path)
	key := p.requestKey(r)
	if e, ok := p.Cache.Get(p.Cache.Resolve(key)); ok {
		switch {
		case p.MaxAge > 0 && time.Since(e.StoredAt) > p.MaxAge:
			// Time-based expiry: drop and refetch.
			p.Cache.Invalidate(e.Key)
			p.Cache.NoteServlet(entryServlet(e, servlet), false)
		case e.IsTemplate():
			if p.Fragments {
				p.serveAssembled(w, r, key, e)
				return
			}
			// Fragment mode was switched off under a populated cache: a
			// template is not a servable page, so treat it as a miss.
			p.Cache.Invalidate(e.Key)
			p.Cache.NoteServlet(entryServlet(e, servlet), false)
		default:
			p.Cache.NoteServlet(entryServlet(e, servlet), true)
			if p.HitDelay > 0 {
				time.Sleep(p.HitDelay)
			}
			w.Header().Set("Content-Type", e.ContentType)
			w.Header().Set(HitHeader, "hit")
			w.Header().Set(keyHeader, e.Key)
			w.WriteHeader(http.StatusOK)
			w.Write(e.Body)
			return
		}
		if p.MissExtraDelay > 0 {
			time.Sleep(p.MissExtraDelay)
		}
		p.forward(w, r, key)
		return
	}
	// Full-key miss (counted above). In fragment mode a first-time user can
	// still ride the shared skeleton: the cookieless request key is aliased
	// to the template when a composite is stored, so probe it quietly
	// (Lookup charges no second miss) — only template entries may answer
	// this cookie-blind path, never a legacy whole page.
	if p.Fragments {
		k0 := cookielessRequestKey(r)
		if e, ok := p.Cache.Lookup(p.Cache.Resolve(k0)); ok && e.IsTemplate() &&
			!(p.MaxAge > 0 && time.Since(e.StoredAt) > p.MaxAge) {
			// Learn the full-key alias now, so this user's next request
			// resolves to the template directly instead of re-missing here.
			p.Cache.Alias(key, e.Key)
			p.serveAssembled(w, r, key, e)
			return
		}
	}
	p.Cache.NoteServlet(servlet, false)
	if p.MissExtraDelay > 0 {
		time.Sleep(p.MissExtraDelay)
	}
	p.forward(w, r, key)
}

// entryServlet attributes a lookup to the entry's generating servlet,
// falling back to the path-derived name.
func entryServlet(e *Entry, fallback string) string {
	if e.Servlet != "" {
		return e.Servlet
	}
	return fallback
}

// servletFromPath extracts the servlet name from a URL path ("/name" or
// "/name/...") — the app server's routing rule, mirrored for accounting
// and the cookie allowlist.
func servletFromPath(path string) string {
	name := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	return name
}

// isEject reports whether the request carries Cache-Control: eject.
func isEject(r *http.Request) bool {
	for _, v := range r.Header.Values("Cache-Control") {
		for _, part := range strings.Split(v, ",") {
			if strings.TrimSpace(part) == "eject" {
				return true
			}
		}
	}
	return false
}

// ClearHeader, when set to "all" on an eject request, flushes the whole
// cache — the sledgehammer the invalidator reaches for after losing log
// entries, when precise invalidation is no longer possible.
const ClearHeader = "X-Cacheportal-Clear"

// serveEject removes the page named by the X-Cacheportal-Key header (or the
// request URL when absent) and reports the outcome. Batched ejects carry
// X-Cacheportal-Batch and list one key per line in the request body; a
// TraceHeader closes the listed pipeline traces with terminal
// webcache.eject spans.
func (p *Proxy) serveEject(w http.ResponseWriter, r *http.Request) {
	ejectStart := time.Now()
	key := r.Header.Get(keyHeader)
	removed := 0
	switch {
	case r.Header.Get(batchHeader) != "":
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "bad eject body: "+err.Error(), http.StatusBadRequest)
			return
		}
		var keys []string
		for _, line := range strings.Split(string(body), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				keys = append(keys, line)
			}
		}
		removed = p.Cache.InvalidateMany(keys)
	case r.Header.Get(ClearHeader) == "all":
		removed = p.Cache.Len()
		p.Cache.Clear()
	case key != "":
		// Resolve through the alias table: an eject may name a key the
		// cache knows only as an alias of the canonical entry.
		if p.Cache.Invalidate(p.Cache.Resolve(key)) {
			removed = 1
		}
	case r.Header.Get(servletHeader) != "":
		removed = p.Cache.InvalidateServlet(r.Header.Get(servletHeader))
	default:
		removed = p.Cache.InvalidatePrefix(cacheKeyForRequest(r))
	}
	if hdr := r.Header.Get(TraceHeader); hdr != "" && p.Tracer != nil {
		end := time.Now()
		for _, ctx := range trace.ParseContexts(hdr) {
			p.Tracer.RecordTerminal(ctx, "webcache.eject", ejectStart, end,
				trace.Attr{K: "removed", V: fmt.Sprint(removed)})
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ejected %d\n", removed)
}

// cacheKeyForRequest keys a request before the origin has told us its
// canonical key: host+path+sorted raw query+cookies. Cookies MUST be part
// of this key: the origin's key spec may project them away when they don't
// affect the page, but until the alias to the canonical key is learned the
// proxy cannot know that — and omitting them would let one user's
// personalized page answer another user's request. The origin's
// X-Cacheportal-Key takes precedence at store time; an alias links this
// request-derived key to it.
func cacheKeyForRequest(r *http.Request) string {
	return cookielessRequestKey(r) + cookieSuffix(r, nil, false)
}

// requestKey is cacheKeyForRequest filtered through the proxy's per-servlet
// cookie allowlist: servlets with an entry key only on the listed cookies,
// everyone else keeps the safe every-cookie-keys default.
func (p *Proxy) requestKey(r *http.Request) string {
	allow, filtered := p.allowFor(servletFromPath(r.URL.Path))
	return cookielessRequestKey(r) + cookieSuffix(r, allow, filtered)
}

// allowFor looks up the servlet's cookie allowlist; the second result
// reports whether one is configured at all (an empty configured list means
// "no cookie keys", which is different from "no allowlist").
func (p *Proxy) allowFor(servlet string) ([]string, bool) {
	if p.CookieAllow == nil {
		return nil, false
	}
	allow, ok := p.CookieAllow[servlet]
	return allow, ok
}

// cookielessRequestKey is the cookie-blind half of the request key. In
// fragment mode it doubles as the shared-skeleton lookup key: every session
// derives the same value, and an alias learned at composite-store time
// points it at the assembly template.
func cookielessRequestKey(r *http.Request) string {
	return r.Host + r.URL.Path + "?" + sortedEncode(r.URL.Query())
}

// cookieSuffix renders the "#name=value;…" cookie part of a request key.
// When filtered, only allowlisted names contribute; otherwise every cookie
// does (the personalization-safety default).
func cookieSuffix(r *http.Request, allow []string, filtered bool) string {
	cookies := r.Cookies()
	if len(cookies) == 0 {
		return ""
	}
	allowed := func(name string) bool {
		if !filtered {
			return true
		}
		for _, a := range allow {
			if a == name {
				return true
			}
		}
		return false
	}
	parts := make([]string, 0, len(cookies))
	for _, c := range cookies {
		if allowed(c.Name) {
			parts = append(parts, url.QueryEscape(c.Name)+"="+url.QueryEscape(c.Value))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	return "#" + strings.Join(parts, ";")
}

// privateLookupKey derives this request's lookup key for a private
// fragment of a template: the fragment key rooted at the (shared) template
// key plus the request's cookie identity. The canonical private key the
// origin names is rooted at the user's full page key instead; an alias
// learned at store time links the two. Using the template key as the root
// keeps derivation possible from the template entry alone.
func (p *Proxy) privateLookupKey(templateKey, name string, r *http.Request) string {
	allow, filtered := p.allowFor(servletFromPath(r.URL.Path))
	return fragment.Key(templateKey, name) + cookieSuffix(r, allow, filtered)
}

// ParseCookieAllow parses a -cookie-allow flag value of the form
// "servlet=cookie+cookie,servlet2=" into a Proxy.CookieAllow map (an empty
// cookie list meaning "no cookie keys for this servlet").
func ParseCookieAllow(s string) (map[string][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string][]string)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, list, ok := strings.Cut(item, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("webcache: bad cookie-allow entry %q (want servlet=cookie+cookie)", item)
		}
		cookies := []string{}
		if list != "" {
			cookies = strings.Split(list, "+")
		}
		out[name] = cookies
	}
	return out, nil
}

// sortedEncode renders query parameters sorted by name, each component
// re-escaped. Escaping matters for correctness, not just form: r.URL.Query()
// unescapes values, so joining them raw would collide ?a=1&b=2 with
// ?a=1%26b%3D2 — one page's cache entry answering a different request.
func sortedEncode(q map[string][]string) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]string, 0, len(q))
	for _, k := range keys {
		for _, v := range q[k] {
			vals = append(vals, url.QueryEscape(k)+"="+url.QueryEscape(v))
		}
	}
	return strings.Join(vals, "&")
}

// serveAssembled serves a page by splicing cached fragments into the
// cached assembly template. Shared fragments come straight from their
// canonical keys; private ones resolve through the alias table from a
// request-derived key. A missing fragment is fetched alone from the origin
// (one fragment body, not the whole page); if that fails the proxy falls
// back to a full forward. Per-servlet accounting counts the template and
// every fragment lookup, so the fragment-level hit ratio is observable.
func (p *Proxy) serveAssembled(w http.ResponseWriter, r *http.Request, requestKey string, tmpl *Entry) {
	servlet := entryServlet(tmpl, servletFromPath(r.URL.Path))
	p.Cache.NoteServlet(servlet, true) // the template itself was a hit
	bodies := make(map[string][]byte, len(tmpl.Refs))
	allHit := true
	for _, ref := range tmpl.Refs {
		fkey := ref.Key
		if ref.Private {
			fkey = p.Cache.Resolve(p.privateLookupKey(tmpl.Key, ref.Name, r))
		}
		if e, ok := p.Cache.Get(fkey); ok {
			if !(p.MaxAge > 0 && time.Since(e.StoredAt) > p.MaxAge) {
				p.Cache.NoteServlet(servlet, true)
				bodies[ref.Name] = e.Body
				continue
			}
			p.Cache.Invalidate(e.Key)
		}
		p.Cache.NoteServlet(servlet, false)
		allHit = false
		body, ok := p.fetchFragment(r, tmpl.Key, ref)
		if !ok {
			p.forward(w, r, requestKey)
			return
		}
		bodies[ref.Name] = body
	}
	page, err := fragment.Assemble(tmpl.Body, func(name string) ([]byte, bool) {
		b, ok := bodies[name]
		return b, ok
	})
	if err != nil {
		// The template references a fragment it has no ref for — a corrupt
		// entry. Drop it and refetch the page whole.
		p.Cache.Invalidate(tmpl.Key)
		p.forward(w, r, requestKey)
		return
	}
	if allHit && p.HitDelay > 0 {
		time.Sleep(p.HitDelay)
	}
	w.Header().Set("Content-Type", tmpl.ContentType)
	if allHit {
		w.Header().Set(HitHeader, "hit")
	} else {
		w.Header().Set(HitHeader, "partial")
	}
	w.Header().Set(keyHeader, tmpl.Key)
	w.WriteHeader(http.StatusOK)
	w.Write(page)
}

// fetchFragment asks the origin for one named fragment of the requested
// page (fragment.FragmentHeader), stores it when cacheable, and — for
// private fragments — learns the alias from this request's derived lookup
// key to the canonical per-user key the origin named.
func (p *Proxy) fetchFragment(r *http.Request, templateKey string, ref FragmentRef) ([]byte, bool) {
	url := p.Origin + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	req.Header = r.Header.Clone()
	req.Header.Del(fragment.CompositeHeader)
	req.Header.Set(fragment.FragmentHeader, ref.Name)
	req.Host = r.Host
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	if cacheableResponse(resp) {
		if key := resp.Header.Get(keyHeader); key != "" {
			p.Cache.Put(&Entry{
				Key:         key,
				Body:        body,
				ContentType: resp.Header.Get("Content-Type"),
				Servlet:     resp.Header.Get(servletHeader),
			})
			if ref.Private {
				p.Cache.Alias(p.privateLookupKey(templateKey, ref.Name, r), key)
			}
		}
	}
	return body, true
}

// serveComposite decodes a composite origin response, stores the template
// and every fragment under their own keys, learns the aliases that make
// later requests hit (this user's full request key and the cookieless key
// both lead to the template; each private fragment's derived lookup key
// leads to its canonical per-user key), and serves the assembled page.
func (p *Proxy) serveComposite(w http.ResponseWriter, r *http.Request, requestKey string, raw []byte) error {
	comp, err := fragment.Decode(raw)
	if err != nil {
		return err
	}
	page, err := comp.Assemble()
	if err != nil {
		return err
	}
	refs := make([]FragmentRef, 0, len(comp.Fragments))
	for _, piece := range comp.Fragments {
		ref := FragmentRef{Name: piece.Name, Private: piece.Private}
		if piece.Private {
			p.Cache.Alias(p.privateLookupKey(comp.TemplateKey, piece.Name, r), piece.Key)
		} else {
			ref.Key = piece.Key
		}
		p.Cache.Put(&Entry{
			Key:         piece.Key,
			Body:        piece.Body,
			ContentType: comp.ContentType,
			Servlet:     comp.Servlet,
		})
		refs = append(refs, ref)
	}
	p.Cache.Put(&Entry{
		Key:         comp.TemplateKey,
		Body:        comp.Template,
		ContentType: comp.ContentType,
		Servlet:     comp.Servlet,
		Refs:        refs,
	})
	p.Cache.Alias(requestKey, comp.TemplateKey)
	p.Cache.Alias(cookielessRequestKey(r), comp.TemplateKey)
	w.Header().Set("Content-Type", comp.ContentType)
	w.Header().Set(keyHeader, comp.TemplateKey)
	w.Header().Set(servletHeader, comp.Servlet)
	w.Header().Set(HitHeader, "miss")
	w.WriteHeader(http.StatusOK)
	w.Write(page)
	return nil
}

// forward proxies the request to the origin and caches eligible responses.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, requestKey string) {
	p.forwardStore(w, r, requestKey, true)
}

// forwardStore is forward with storage optional: the cluster fallback path
// (owner unreachable, serving off-owner) must not admit entries this node
// won't receive ejects for.
func (p *Proxy) forwardStore(w http.ResponseWriter, r *http.Request, requestKey string, store bool) {
	url := p.Origin + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	req.Host = r.Host
	if p.Fragments && r.Method == http.MethodGet && store {
		// Negotiate a fragment-structured response; a whole-page origin (or
		// an uncacheable page) simply ignores the header and we fall back to
		// the plain store below. The no-store path asks for the plain page —
		// a composite it won't cache is pure overhead.
		req.Header.Set(fragment.CompositeHeader, fragment.CompositeAccept)
	}
	resp, err := p.client().Do(req)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}

	if store && resp.StatusCode == http.StatusOK && r.Method == http.MethodGet && cacheableResponse(resp) {
		if p.Fragments && resp.Header.Get(fragment.CompositeHeader) == fragment.CompositeYes {
			if err := p.serveComposite(w, r, requestKey, body); err != nil {
				http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
			}
			return
		}
		key := resp.Header.Get(keyHeader)
		if key == "" {
			key = requestKey
		}
		p.Cache.Put(&Entry{
			Key:         key,
			Body:        body,
			ContentType: resp.Header.Get("Content-Type"),
			Servlet:     resp.Header.Get(servletHeader),
		})
		// Remember how this raw request maps to the canonical page key so
		// later identical requests hit even when the origin's key spec
		// projects away some parameters.
		p.Cache.Alias(requestKey, key)
	}

	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.Header().Set(HitHeader, "miss")
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// cacheableResponse reports whether the response is marked with the
// CachePortal owner token.
func cacheableResponse(resp *http.Response) bool {
	cc := resp.Header.Get("Cache-Control")
	if cc == "" {
		return false
	}
	lcc := strings.ToLower(cc)
	if strings.Contains(lcc, "no-cache") || strings.Contains(lcc, "no-store") {
		return false
	}
	return strings.Contains(lcc, `owner="`+CacheOwnerToken+`"`)
}

// CacheOwnerToken is the owner value this cache honours.
const CacheOwnerToken = "cacheportal"

// Eject sends an invalidation for key to a cache at addr (helper used by
// the invalidator and by tests). It is a plain HTTP request carrying the
// extended header, per §4.2.4.
func Eject(client *http.Client, cacheURL, key string) error {
	return ejectRequest(client, cacheURL, func(req *http.Request) {
		req.Header.Set(keyHeader, key)
	})
}

// EjectKeys invalidates many keys at a remote cache in one request: a POST
// carrying the eject directive, the batch marker header, and one key per
// line in the body. The remote answers "ejected N" like single ejects.
func EjectKeys(client *http.Client, cacheURL string, keys []string) error {
	return EjectKeysTraced(client, cacheURL, keys, "")
}

// EjectKeysTraced is EjectKeys with a pipeline-trace header: traceHdr (a
// trace.FormatContexts value, "" for none) rides the request so the remote
// cache closes the listed traces with terminal webcache.eject spans.
func EjectKeysTraced(client *http.Client, cacheURL string, keys []string, traceHdr string) error {
	if len(keys) == 0 {
		return nil
	}
	body := strings.NewReader(strings.Join(keys, "\n") + "\n")
	req, err := http.NewRequest(http.MethodPost, cacheURL+"/", body)
	if err != nil {
		return err
	}
	req.Header.Set("Cache-Control", "eject")
	req.Header.Set(batchHeader, "1")
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	if traceHdr != "" {
		req.Header.Set(TraceHeader, traceHdr)
	}
	resp, err := httpx.Client(client).Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("webcache: batch eject: status %d", resp.StatusCode)
	}
	return nil
}

// EjectAll flushes the entire remote cache.
func EjectAll(client *http.Client, cacheURL string) error {
	return ejectRequest(client, cacheURL, func(req *http.Request) {
		req.Header.Set(ClearHeader, "all")
	})
}

func ejectRequest(client *http.Client, cacheURL string, decorate func(*http.Request)) error {
	req, err := http.NewRequest(http.MethodGet, cacheURL+"/", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Cache-Control", "eject")
	decorate(req)
	resp, err := httpx.Client(client).Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("webcache: eject: status %d", resp.StatusCode)
	}
	return nil
}
