package webcache

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/httpx"
	"repro/internal/trace"
)

// Header names shared with the application server. Kept as local constants
// so the cache stays deployable without importing the app server (the
// paper's independence requirement, §2.1).
const (
	keyHeader     = "X-Cacheportal-Key"
	servletHeader = "X-Cacheportal-Servlet"
	// HitHeader marks responses served from this cache.
	HitHeader = "X-Cacheportal-Cache"
	// batchHeader marks an eject request whose body carries many keys,
	// newline-separated, so one round trip invalidates a whole batch.
	batchHeader = "X-Cacheportal-Batch"
)

// TraceHeader carries pipeline trace contexts on an eject request
// ("trace:span,trace:span", trace.FormatContexts): the invalidator lists
// the update contexts behind the batch, and this cache records the
// terminal webcache.eject span for each — the last hop of the
// commit-to-eject chain, in the cache's own tracer.
const TraceHeader = "X-Cacheportal-Trace"

// Proxy is the caching reverse proxy. It forwards misses to Origin,
// stores responses whose Cache-Control carries owner="cacheportal", and
// processes `Cache-Control: eject` invalidation requests (§4.2.4).
type Proxy struct {
	// Origin is the downstream base URL, e.g. "http://127.0.0.1:8080".
	Origin string
	// Cache is the page store.
	Cache *Cache
	// Client performs origin requests; the shared timeout-bearing client
	// (httpx.Default) when nil, so a hung origin turns into a bounded 502
	// instead of a goroutine pinned forever.
	Client *http.Client
	// HitDelay/MissExtraDelay optionally add artificial latency, used by
	// experiments to model cache and network distance.
	HitDelay       time.Duration
	MissExtraDelay time.Duration

	// MaxAge, when positive, expires entries older than this — the
	// time-based refresh of Oracle9i's web cache that the paper's
	// introduction critiques: it re-computes pages whether or not they
	// changed, yet still serves stale content for up to MaxAge. Zero means
	// entries live until invalidated (the CachePortal model).
	MaxAge time.Duration

	// Tracer, when set, closes pipeline traces: an eject request carrying
	// TraceHeader gets a terminal webcache.eject span per listed context.
	Tracer *trace.Tracer
}

// NewProxy creates a proxy in front of origin.
func NewProxy(origin string, cache *Cache) *Proxy {
	return &Proxy{Origin: origin, Cache: cache}
}

func (p *Proxy) client() *http.Client {
	return httpx.Client(p.Client)
}

// ServeHTTP implements the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Invalidation request: an otherwise-normal request whose
	// Cache-Control contains the extended "eject" directive.
	if isEject(r) {
		p.serveEject(w, r)
		return
	}

	// Only GETs are served from (or admitted to) the cache.
	if r.Method != http.MethodGet {
		p.forward(w, r, "")
		return
	}
	key := cacheKeyForRequest(r)
	if e, ok := p.Cache.Get(p.Cache.Resolve(key)); ok {
		if p.MaxAge > 0 && time.Since(e.StoredAt) > p.MaxAge {
			// Time-based expiry: drop and refetch.
			p.Cache.Invalidate(e.Key)
			p.forward(w, r, key)
			return
		}
		if p.HitDelay > 0 {
			time.Sleep(p.HitDelay)
		}
		w.Header().Set("Content-Type", e.ContentType)
		w.Header().Set(HitHeader, "hit")
		w.Header().Set(keyHeader, e.Key)
		w.WriteHeader(http.StatusOK)
		w.Write(e.Body)
		return
	}
	if p.MissExtraDelay > 0 {
		time.Sleep(p.MissExtraDelay)
	}
	p.forward(w, r, key)
}

// isEject reports whether the request carries Cache-Control: eject.
func isEject(r *http.Request) bool {
	for _, v := range r.Header.Values("Cache-Control") {
		for _, part := range strings.Split(v, ",") {
			if strings.TrimSpace(part) == "eject" {
				return true
			}
		}
	}
	return false
}

// ClearHeader, when set to "all" on an eject request, flushes the whole
// cache — the sledgehammer the invalidator reaches for after losing log
// entries, when precise invalidation is no longer possible.
const ClearHeader = "X-Cacheportal-Clear"

// serveEject removes the page named by the X-Cacheportal-Key header (or the
// request URL when absent) and reports the outcome. Batched ejects carry
// X-Cacheportal-Batch and list one key per line in the request body; a
// TraceHeader closes the listed pipeline traces with terminal
// webcache.eject spans.
func (p *Proxy) serveEject(w http.ResponseWriter, r *http.Request) {
	ejectStart := time.Now()
	key := r.Header.Get(keyHeader)
	removed := 0
	switch {
	case r.Header.Get(batchHeader) != "":
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "bad eject body: "+err.Error(), http.StatusBadRequest)
			return
		}
		var keys []string
		for _, line := range strings.Split(string(body), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				keys = append(keys, line)
			}
		}
		removed = p.Cache.InvalidateMany(keys)
	case r.Header.Get(ClearHeader) == "all":
		removed = p.Cache.Len()
		p.Cache.Clear()
	case key != "":
		if p.Cache.Invalidate(key) {
			removed = 1
		}
	case r.Header.Get(servletHeader) != "":
		removed = p.Cache.InvalidateServlet(r.Header.Get(servletHeader))
	default:
		removed = p.Cache.InvalidatePrefix(cacheKeyForRequest(r))
	}
	if hdr := r.Header.Get(TraceHeader); hdr != "" && p.Tracer != nil {
		end := time.Now()
		for _, ctx := range trace.ParseContexts(hdr) {
			p.Tracer.RecordTerminal(ctx, "webcache.eject", ejectStart, end,
				trace.Attr{K: "removed", V: fmt.Sprint(removed)})
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ejected %d\n", removed)
}

// cacheKeyForRequest keys a request before the origin has told us its
// canonical key: host+path+sorted raw query+cookies. Cookies MUST be part
// of this key: the origin's key spec may project them away when they don't
// affect the page, but until the alias to the canonical key is learned the
// proxy cannot know that — and omitting them would let one user's
// personalized page answer another user's request. The origin's
// X-Cacheportal-Key takes precedence at store time; an alias links this
// request-derived key to it.
func cacheKeyForRequest(r *http.Request) string {
	q := r.URL.Query()
	key := r.Host + r.URL.Path + "?" + sortedEncode(q)
	if cookies := r.Cookies(); len(cookies) > 0 {
		parts := make([]string, 0, len(cookies))
		for _, c := range cookies {
			parts = append(parts, url.QueryEscape(c.Name)+"="+url.QueryEscape(c.Value))
		}
		sort.Strings(parts)
		key += "#" + strings.Join(parts, ";")
	}
	return key
}

// sortedEncode renders query parameters sorted by name, each component
// re-escaped. Escaping matters for correctness, not just form: r.URL.Query()
// unescapes values, so joining them raw would collide ?a=1&b=2 with
// ?a=1%26b%3D2 — one page's cache entry answering a different request.
func sortedEncode(q map[string][]string) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]string, 0, len(q))
	for _, k := range keys {
		for _, v := range q[k] {
			vals = append(vals, url.QueryEscape(k)+"="+url.QueryEscape(v))
		}
	}
	return strings.Join(vals, "&")
}

// forward proxies the request to the origin and caches eligible responses.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, requestKey string) {
	url := p.Origin + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	req.Host = r.Host
	resp, err := p.client().Do(req)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}

	if resp.StatusCode == http.StatusOK && r.Method == http.MethodGet && cacheableResponse(resp) {
		key := resp.Header.Get(keyHeader)
		if key == "" {
			key = requestKey
		}
		p.Cache.Put(&Entry{
			Key:         key,
			Body:        body,
			ContentType: resp.Header.Get("Content-Type"),
			Servlet:     resp.Header.Get(servletHeader),
		})
		// Remember how this raw request maps to the canonical page key so
		// later identical requests hit even when the origin's key spec
		// projects away some parameters.
		p.Cache.Alias(requestKey, key)
	}

	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.Header().Set(HitHeader, "miss")
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// cacheableResponse reports whether the response is marked with the
// CachePortal owner token.
func cacheableResponse(resp *http.Response) bool {
	cc := resp.Header.Get("Cache-Control")
	if cc == "" {
		return false
	}
	lcc := strings.ToLower(cc)
	if strings.Contains(lcc, "no-cache") || strings.Contains(lcc, "no-store") {
		return false
	}
	return strings.Contains(lcc, `owner="`+CacheOwnerToken+`"`)
}

// CacheOwnerToken is the owner value this cache honours.
const CacheOwnerToken = "cacheportal"

// Eject sends an invalidation for key to a cache at addr (helper used by
// the invalidator and by tests). It is a plain HTTP request carrying the
// extended header, per §4.2.4.
func Eject(client *http.Client, cacheURL, key string) error {
	return ejectRequest(client, cacheURL, func(req *http.Request) {
		req.Header.Set(keyHeader, key)
	})
}

// EjectKeys invalidates many keys at a remote cache in one request: a POST
// carrying the eject directive, the batch marker header, and one key per
// line in the body. The remote answers "ejected N" like single ejects.
func EjectKeys(client *http.Client, cacheURL string, keys []string) error {
	return EjectKeysTraced(client, cacheURL, keys, "")
}

// EjectKeysTraced is EjectKeys with a pipeline-trace header: traceHdr (a
// trace.FormatContexts value, "" for none) rides the request so the remote
// cache closes the listed traces with terminal webcache.eject spans.
func EjectKeysTraced(client *http.Client, cacheURL string, keys []string, traceHdr string) error {
	if len(keys) == 0 {
		return nil
	}
	body := strings.NewReader(strings.Join(keys, "\n") + "\n")
	req, err := http.NewRequest(http.MethodPost, cacheURL+"/", body)
	if err != nil {
		return err
	}
	req.Header.Set("Cache-Control", "eject")
	req.Header.Set(batchHeader, "1")
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	if traceHdr != "" {
		req.Header.Set(TraceHeader, traceHdr)
	}
	resp, err := httpx.Client(client).Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("webcache: batch eject: status %d", resp.StatusCode)
	}
	return nil
}

// EjectAll flushes the entire remote cache.
func EjectAll(client *http.Client, cacheURL string) error {
	return ejectRequest(client, cacheURL, func(req *http.Request) {
		req.Header.Set(ClearHeader, "all")
	})
}

func ejectRequest(client *http.Client, cacheURL string, decorate func(*http.Request)) error {
	req, err := http.NewRequest(http.MethodGet, cacheURL+"/", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Cache-Control", "eject")
	decorate(req)
	resp, err := httpx.Client(client).Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("webcache: eject: status %d", resp.StatusCode)
	}
	return nil
}
