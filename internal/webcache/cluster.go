package webcache

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/httpx"
	"repro/internal/obs"
)

// ForwardedHeader marks a request a peer cache node already routed: the
// receiving node serves it locally, never forwards again — the one-hop
// guarantee that makes a stale map degrade into an extra hop, not a loop.
const ForwardedHeader = "X-Cacheportal-Forwarded"

// ClusterNode is a proxy's cluster identity: which node this cache is,
// the shared placement view, and the per-slot request counters the shard
// manager reads. A Proxy with a nil Cluster behaves exactly as before —
// single-node operation is byte-identical.
type ClusterNode struct {
	// ID is this node's identity in the map.
	ID string
	// View is the placement map, shared (in-process) or installed over
	// /debug/cluster (across processes).
	View *cluster.View
	// Cache is the node's local store; on installing a map that takes
	// slots away from this node, their entries are dropped so a node that
	// stops receiving a slot's ejects cannot keep serving it stale.
	Cache *Cache
	// Client performs peer forwards; httpx.Default when nil.
	Client *http.Client

	load []atomic.Int64

	forwards     atomic.Int64
	forwardFails atomic.Int64
	installs     atomic.Int64
}

// NewClusterNode builds the node identity. The slot counters are sized to
// the initial map; installs never change the slot count (a map with a
// different slot count is rejected).
func NewClusterNode(id string, view *cluster.View, cache *Cache) *ClusterNode {
	n := &ClusterNode{ID: id, View: view, Cache: cache}
	if m := view.Map(); m != nil {
		n.load = make([]atomic.Int64, m.NumSlots())
	}
	return n
}

// Route decides where a request belongs: local when this node owns the
// request's slot, otherwise the owner to forward to. Owners rotate for
// forwarded traffic so a hot slot's replicas all warm up. It also counts
// the slot access — the load signal the shard manager rebalances on.
func (n *ClusterNode) Route(r *http.Request) (peerURL string, local bool) {
	m := n.View.Map()
	if m == nil || m.NumSlots() == 0 {
		return "", true
	}
	slot := m.Slot(cluster.RequestRouteKey(r))
	var seq int64
	if slot < len(n.load) {
		seq = n.load[slot].Add(1)
	}
	owners := m.Owners(slot)
	if len(owners) == 0 {
		return "", true
	}
	for _, o := range owners {
		if o.ID == n.ID {
			return "", true
		}
	}
	return owners[int(seq)%len(owners)].URL, false
}

// Report snapshots the node for the shard manager.
func (n *ClusterNode) Report() cluster.Report {
	rep := cluster.Report{Node: n.ID, SlotLoad: make([]int64, len(n.load))}
	if m := n.View.Map(); m != nil {
		rep.MapVersion = m.Version
	}
	for i := range n.load {
		rep.SlotLoad[i] = n.load[i].Load()
	}
	if n.Cache != nil {
		st := n.Cache.Stats()
		rep.Hits, rep.Misses = st.Hits, st.Misses
	}
	return rep
}

// ServeDebug handles /debug/cluster on the node's serving path: GET
// returns the membership view plus the load report (what HTTPProbe.Fetch
// reads), POST installs a newer map (what HTTPProbe.Install sends).
func (n *ClusterNode) ServeDebug(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cluster.DebugState{Report: n.Report(), Map: n.View.Map()})
	case http.MethodPost:
		var m cluster.Map
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&m); err != nil {
			http.Error(w, "bad map: "+err.Error(), http.StatusBadRequest)
			return
		}
		old := n.View.Map()
		if old != nil && m.NumSlots() != old.NumSlots() {
			http.Error(w, "slot count mismatch", http.StatusBadRequest)
			return
		}
		if n.View.Install(&m) {
			n.installs.Add(1)
			n.dropUnowned(&m)
			fmt.Fprintf(w, "installed version %d\n", m.Version)
			return
		}
		fmt.Fprintf(w, "ignored (have version %d)\n", n.View.Map().Version)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// dropUnowned evicts entries of slots this node no longer owns under the
// new map. A de-replicated node stops receiving routed ejects for those
// slots, so keeping the entries would risk serving them stale if traffic
// ever lands here again; dropping them also returns the memory.
func (n *ClusterNode) dropUnowned(m *cluster.Map) {
	if n.Cache == nil {
		return
	}
	var doomed []string
	for _, key := range n.Cache.Keys() {
		if !m.IsOwner(m.Slot(cluster.RouteKey(key)), n.ID) {
			doomed = append(doomed, key)
		}
	}
	if len(doomed) > 0 {
		n.Cache.InvalidateMany(doomed)
	}
}

// Instrument registers the node's forwarding counters.
func (n *ClusterNode) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".forwards_total", n.forwards.Load)
	reg.GaugeFunc(prefix+".forward_failures_total", n.forwardFails.Load)
	reg.GaugeFunc(prefix+".map_installs_total", n.installs.Load)
	reg.GaugeFunc(prefix+".map_version", func() int64 {
		if m := n.View.Map(); m != nil {
			return m.Version
		}
		return 0
	})
}

// forwardPeer proxies the request one hop to the owning node, marking it
// forwarded so the peer serves it locally. It reports whether a response
// was relayed; on transport failure the caller falls back to serving from
// the origin itself.
func (p *Proxy) forwardPeer(w http.ResponseWriter, r *http.Request, peerURL string) bool {
	n := p.Cluster
	url := peerURL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, nil)
	if err != nil {
		n.forwardFails.Add(1)
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedHeader, n.ID)
	req.Host = r.Host
	resp, err := httpx.Client(n.Client).Do(req)
	if err != nil {
		n.forwardFails.Add(1)
		return false
	}
	defer resp.Body.Close()
	n.forwards.Add(1)
	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
