package webcache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fragment"
)

// fragmentOrigin is a fragment-aware origin in miniature: a personalized
// "home" page made of a shared "listing" fragment (keyed by ?cat) and a
// private "trim" fragment (keyed by the session cookie). It answers the
// composite negotiation, single-fragment requests, and plain whole-page
// requests — the same protocol internal/appserver speaks. version lets
// tests change the shared content; calls counts origin requests.
type fragmentOrigin struct {
	version int64
	calls   int64
	srv     *httptest.Server
}

var homeTemplate = []byte("<top>" + fragment.Marker("listing") + "|" + fragment.Marker("trim") + "</top>")

func newFragmentOrigin(t *testing.T) *fragmentOrigin {
	t.Helper()
	o := &fragmentOrigin{}
	o.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&o.calls, 1)
		session := ""
		if c, err := r.Cookie("session"); err == nil {
			session = c.Value
		}
		cat := r.URL.Query().Get("cat")
		sharedKey := "origin/home?g:cat=" + cat
		pageKey := sharedKey + "&c:session=" + session
		tmplKey := fragment.TemplateKey(sharedKey)
		listing := []byte(fmt.Sprintf("cat%s-v%d", cat, atomic.LoadInt64(&o.version)))
		trim := []byte("hello " + session)

		owner := func() {
			w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
			w.Header().Set(servletHeader, "home")
		}
		if name := r.Header.Get(fragment.FragmentHeader); name != "" {
			var body []byte
			var key string
			switch name {
			case "listing":
				body, key = listing, fragment.Key(sharedKey, "listing")
			case "trim":
				body, key = trim, fragment.Key(pageKey, "trim")
			default:
				http.NotFound(w, r)
				return
			}
			owner()
			w.Header().Set(keyHeader, key)
			w.Write(body)
			return
		}
		if r.Header.Get(fragment.CompositeHeader) == fragment.CompositeAccept {
			comp := &fragment.Composite{
				TemplateKey: tmplKey,
				Template:    homeTemplate,
				ContentType: "text/html",
				Servlet:     "home",
				Fragments: []fragment.Piece{
					{Ref: fragment.Ref{Name: "listing", Key: fragment.Key(sharedKey, "listing")}, Body: listing},
					{Ref: fragment.Ref{Name: "trim", Key: fragment.Key(pageKey, "trim"), Private: true}, Body: trim},
				},
			}
			enc, err := comp.Encode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			owner()
			w.Header().Set(fragment.CompositeHeader, fragment.CompositeYes)
			w.Header().Set(keyHeader, tmplKey)
			w.Header().Set("Content-Type", fragment.ContentType)
			w.Write(enc)
			return
		}
		page, err := (&fragment.Composite{
			TemplateKey: tmplKey, Template: homeTemplate,
			Fragments: []fragment.Piece{
				{Ref: fragment.Ref{Name: "listing"}, Body: listing},
				{Ref: fragment.Ref{Name: "trim"}, Body: trim},
			},
		}).Assemble()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		owner()
		w.Header().Set(keyHeader, pageKey)
		w.Header().Set("Content-Type", "text/html")
		w.Write(page)
	}))
	t.Cleanup(o.srv.Close)
	return o
}

func getAs(t *testing.T, url, session string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.AddCookie(&http.Cookie{Name: "session", Value: session})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b), resp.Header.Get(HitHeader)
}

func TestProxyFragmentCompositeStoreAndAssemble(t *testing.T) {
	origin := newFragmentOrigin(t)
	cache := NewCache(0)
	p := NewProxy(origin.srv.URL, cache)
	p.Fragments = true
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	b1, h1 := getAs(t, proxy.URL+"/home?cat=1", "u1")
	if h1 != "miss" {
		t.Fatalf("first request: %s", h1)
	}
	if want := "<top>cat1-v0|hello u1</top>"; b1 != want {
		t.Fatalf("assembled body %q, want %q", b1, want)
	}
	// Template + two fragments stored under their own keys.
	for _, k := range []string{
		fragment.TemplateKey("origin/home?g:cat=1"),
		fragment.Key("origin/home?g:cat=1", "listing"),
		fragment.Key("origin/home?g:cat=1&c:session=u1", "trim"),
	} {
		if _, ok := cache.Peek(k); !ok {
			t.Fatalf("missing cache entry %q (have %v)", k, cache.Keys())
		}
	}

	b2, h2 := getAs(t, proxy.URL+"/home?cat=1", "u1")
	if h2 != "hit" || b2 != b1 {
		t.Fatalf("second request: %s %q", h2, b2)
	}
	if n := atomic.LoadInt64(&origin.calls); n != 1 {
		t.Fatalf("origin calls after full hit: %d", n)
	}
}

func TestProxyFragmentCrossUserSharedReuse(t *testing.T) {
	origin := newFragmentOrigin(t)
	cache := NewCache(0)
	p := NewProxy(origin.srv.URL, cache)
	p.Fragments = true
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	getAs(t, proxy.URL+"/home?cat=2", "u1")
	before := atomic.LoadInt64(&origin.calls)

	// A different user rides the shared skeleton: template and listing come
	// from cache, only the private trim goes to the origin.
	b, h := getAs(t, proxy.URL+"/home?cat=2", "u2")
	if h != "partial" {
		t.Fatalf("new user: %s, want partial", h)
	}
	if want := "<top>cat2-v0|hello u2</top>"; b != want {
		t.Fatalf("assembled body %q, want %q", b, want)
	}
	if n := atomic.LoadInt64(&origin.calls) - before; n != 1 {
		t.Fatalf("origin calls for new user: %d, want 1 (trim fetch only)", n)
	}

	// Now the trim is cached too: full hit, no origin traffic.
	before = atomic.LoadInt64(&origin.calls)
	if _, h := getAs(t, proxy.URL+"/home?cat=2", "u2"); h != "hit" {
		t.Fatalf("repeat: %s", h)
	}
	if n := atomic.LoadInt64(&origin.calls) - before; n != 0 {
		t.Fatalf("origin calls on repeat: %d", n)
	}
}

func TestProxyFragmentEjectRefetchesOnlyThatFragment(t *testing.T) {
	origin := newFragmentOrigin(t)
	cache := NewCache(0)
	p := NewProxy(origin.srv.URL, cache)
	p.Fragments = true
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	getAs(t, proxy.URL+"/home?cat=3", "u1")
	atomic.StoreInt64(&origin.version, 1) // the data changed...
	listingKey := fragment.Key("origin/home?g:cat=3", "listing")
	if !cache.Invalidate(listingKey) { // ...and the invalidator ejected the listing
		t.Fatal("listing fragment was not cached")
	}

	b, h := getAs(t, proxy.URL+"/home?cat=3", "u1")
	if h != "partial" {
		t.Fatalf("after eject: %s, want partial", h)
	}
	if want := "<top>cat3-v1|hello u1</top>"; b != want {
		t.Fatalf("assembled body %q, want %q (fresh listing, cached trim)", b, want)
	}
}

func TestProxyFragmentsOffIsWholePageProtocol(t *testing.T) {
	sawComposite := int64(0)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(fragment.CompositeHeader) != "" {
			atomic.AddInt64(&sawComposite, 1)
		}
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		w.Header().Set(keyHeader, "origin/page")
		fmt.Fprint(w, "whole page")
	}))
	defer origin.Close()
	cache := NewCache(0)
	proxy := httptest.NewServer(NewProxy(origin.URL, cache)) // Fragments off
	defer proxy.Close()

	if _, h := getAs(t, proxy.URL+"/page", ""); h != "miss" {
		t.Fatalf("first: %s", h)
	}
	if _, h := getAs(t, proxy.URL+"/page", ""); h != "hit" {
		t.Fatalf("second: %s", h)
	}
	if n := atomic.LoadInt64(&sawComposite); n != 0 {
		t.Fatalf("proxy negotiated composites with Fragments off (%d times)", n)
	}
}

func TestProxyFragmentModeFlippedOffInvalidatesTemplates(t *testing.T) {
	origin := newFragmentOrigin(t)
	cache := NewCache(0)
	p := NewProxy(origin.srv.URL, cache)
	p.Fragments = true
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	getAs(t, proxy.URL+"/home?cat=4", "u1")
	p.Fragments = false // operator flips the mode under a populated cache

	// The template entry is not a servable page: the proxy must treat it as
	// a miss and fall back to the whole-page protocol, never serve raw
	// template bytes.
	b, h := getAs(t, proxy.URL+"/home?cat=4", "u1")
	if h != "miss" {
		t.Fatalf("after flip: %s", h)
	}
	if strings.Contains(b, "cacheportal-fragment") {
		t.Fatalf("served raw template markers: %q", b)
	}
}

func TestProxyFragmentPerServletStats(t *testing.T) {
	origin := newFragmentOrigin(t)
	cache := NewCache(0)
	p := NewProxy(origin.srv.URL, cache)
	p.Fragments = true
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	getAs(t, proxy.URL+"/home?cat=5", "u1") // miss
	getAs(t, proxy.URL+"/home?cat=5", "u1") // template + 2 fragment hits

	st := cache.StatsOfServlet("home")
	if st.Misses == 0 || st.Hits < 3 {
		t.Fatalf("per-servlet stats %+v: want >=1 miss and >=3 hits", st)
	}
	if all := cache.ServletStats(); all["home"] != st {
		t.Fatalf("ServletStats disagrees: %+v vs %+v", all["home"], st)
	}
}

// Satellite: per-servlet cookie allowlist. A servlet with an entry keys
// only on the listed cookies, so two users with different irrelevant
// cookies share a cache entry immediately; servlets without an entry keep
// the personalization-safe default where every cookie keys.
func TestCookieAllowlist(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		// No keyHeader: the entry is stored under the proxy's request key,
		// so cookie handling in that key is exactly what is under test.
		fmt.Fprint(w, "body for "+r.URL.Path)
	}))
	defer origin.Close()
	cache := NewCache(0)
	p := NewProxy(origin.URL, cache)
	p.CookieAllow = map[string][]string{
		"shared": {},          // no cookie keys this servlet
		"bycat":  {"catpref"}, // only catpref keys it
	}
	proxy := httptest.NewServer(p)
	defer proxy.Close()

	get := func(path string, cookies map[string]string) string {
		req, _ := http.NewRequest(http.MethodGet, proxy.URL+path, nil)
		for n, v := range cookies {
			req.AddCookie(&http.Cookie{Name: n, Value: v})
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get(HitHeader)
	}

	// Allowlisted with empty list: tracking cookies don't key.
	get("/shared", map[string]string{"track": "a"})
	if h := get("/shared", map[string]string{"track": "b"}); h != "hit" {
		t.Fatalf("allowlisted servlet, different tracking cookie: %s, want hit", h)
	}

	// Allowlisted with one name: that cookie still keys...
	get("/bycat", map[string]string{"catpref": "1", "track": "a"})
	if h := get("/bycat", map[string]string{"catpref": "2", "track": "a"}); h != "miss" {
		t.Fatalf("allowlisted cookie changed: %s, want miss", h)
	}
	// ...but unlisted ones don't.
	if h := get("/bycat", map[string]string{"catpref": "1", "track": "z"}); h != "hit" {
		t.Fatalf("unlisted cookie changed: %s, want hit", h)
	}

	// No allowlist entry: the safety invariant — unknown cookies key, so
	// one user's page can never answer another user's request.
	get("/unlisted", map[string]string{"session": "u1"})
	if h := get("/unlisted", map[string]string{"session": "u2"}); h != "miss" {
		t.Fatalf("unlisted servlet, different session: %s, want miss (personalization safety)", h)
	}
}

func TestParseCookieAllow(t *testing.T) {
	m, err := ParseCookieAllow("home=session+lang, shared= ,search=q")
	if err != nil {
		t.Fatal(err)
	}
	if len(m["home"]) != 2 || m["home"][0] != "session" || m["home"][1] != "lang" {
		t.Fatalf("home: %v", m["home"])
	}
	if v, ok := m["shared"]; !ok || len(v) != 0 {
		t.Fatalf("shared: %v ok=%v", v, ok)
	}
	if m2, err := ParseCookieAllow(""); err != nil || m2 != nil {
		t.Fatalf("empty: %v %v", m2, err)
	}
	if _, err := ParseCookieAllow("nosign"); err == nil {
		t.Fatal("entry without '=' should error")
	}
}

// Satellite: eject edge cases around aliases and the servlet header.
func TestEjectEmptyServletHeaderFallsThroughToPrefix(t *testing.T) {
	cache := NewCache(0)
	cache.Put(&Entry{Key: "host/page?g:id=1", Servlet: "page"})
	cache.Put(&Entry{Key: "host/other", Servlet: "other"})
	proxy := httptest.NewServer(NewProxy("http://unused.invalid", cache))
	defer proxy.Close()

	// An explicitly empty X-Cacheportal-Servlet header must not match every
	// (or any) servlet: the eject falls through to the URL-prefix rule.
	req, _ := http.NewRequest(http.MethodGet, proxy.URL+"/page", nil)
	req.Header.Set("Cache-Control", "eject")
	req.Header.Set(servletHeader, "")
	req.Host = "host"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "ejected 1") {
		t.Fatalf("response: %q", b)
	}
	if _, ok := cache.Peek("host/other"); !ok {
		t.Fatal("unrelated entry ejected")
	}
	if _, ok := cache.Peek("host/page?g:id=1"); ok {
		t.Fatal("prefix-matched entry survived")
	}
}

func TestEjectResolvesAliasedKey(t *testing.T) {
	cache := NewCache(0)
	cache.Put(&Entry{Key: "canonical", Servlet: "s", Body: []byte("x")})
	cache.Alias("raw-request-key", "canonical")
	proxy := httptest.NewServer(NewProxy("http://unused.invalid", cache))
	defer proxy.Close()

	// Ejecting by the alias must remove the canonical entry.
	if err := Eject(nil, proxy.URL, "raw-request-key"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Peek("canonical"); ok {
		t.Fatal("canonical entry survived eject via alias")
	}
	if got := cache.Resolve("raw-request-key"); got != "raw-request-key" {
		t.Fatalf("alias survived its target: %q", got)
	}
}

func TestEjectKeyPresentOnlyAsAlias(t *testing.T) {
	cache := NewCache(0)
	// The alias exists but its target entry was never stored (or already
	// evicted): the eject must count a miss, not remove anything else.
	cache.Put(&Entry{Key: "bystander", Servlet: "s"})
	cache.Alias("ghost-alias", "ghost-canonical")
	proxy := httptest.NewServer(NewProxy("http://unused.invalid", cache))
	defer proxy.Close()

	if err := Eject(nil, proxy.URL, "ghost-alias"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Peek("bystander"); !ok {
		t.Fatal("bystander removed")
	}
	if st := cache.Stats(); st.EjectMisses != 1 {
		t.Fatalf("stats: %+v, want 1 eject miss", st)
	}
}
