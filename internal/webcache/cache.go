// Package webcache implements the dynamic-content web cache of the paper's
// Configuration III: an HTTP reverse proxy that stores pages marked
// `Cache-Control: private, owner="cacheportal"` and evicts them on demand
// when it receives a request carrying the extended `Cache-Control: eject`
// header (the NetCache 4.0 mechanism the paper builds on, §4.2.4). Entries
// are LRU-bounded and keyed by the canonical page identifier the
// application server emits.
package webcache

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// Entry is one cached page.
type Entry struct {
	Key         string
	Body        []byte
	ContentType string
	Servlet     string
	StoredAt    time.Time
}

// Stats are the cache's counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Stores        int64
	Invalidations int64 // entries removed by eject requests
	Evictions     int64 // entries removed by LRU pressure
}

// HitRatio returns hits/(hits+misses), or 0 when no lookups happened.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a thread-safe LRU page cache with invalidation. Besides direct
// keys, the cache maintains aliases: the proxy derives a lookup key from the
// raw request, while the origin names the canonical page key (its key-spec
// projection of the request); an alias links the former to the latter so
// subsequent raw requests hit.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element // key → element whose Value is *Entry
	lru       *list.List               // front = most recent
	byServlet map[string]map[string]struct{}
	alias     map[string]string   // request key → canonical key
	aliasesOf map[string][]string // canonical key → its aliases
	stats     Stats
}

// NewCache creates a cache holding at most capacity pages (unbounded if
// capacity <= 0).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity:  capacity,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
		byServlet: make(map[string]map[string]struct{}),
		alias:     make(map[string]string),
		aliasesOf: make(map[string][]string),
	}
}

// Alias records that lookups for from should resolve to canonical key to.
// Identity aliases are ignored.
func (c *Cache) Alias(from, to string) {
	if from == to {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.alias[from]; ok {
		if prev == to {
			return
		}
		c.removeAliasLocked(prev, from)
	}
	c.alias[from] = to
	c.aliasesOf[to] = append(c.aliasesOf[to], from)
}

func (c *Cache) removeAliasLocked(target, from string) {
	list := c.aliasesOf[target]
	for i, a := range list {
		if a == from {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(c.aliasesOf, target)
	} else {
		c.aliasesOf[target] = list
	}
}

// dropAliasesLocked removes every alias pointing at key (called when the
// entry disappears).
func (c *Cache) dropAliasesLocked(key string) {
	for _, a := range c.aliasesOf[key] {
		delete(c.alias, a)
	}
	delete(c.aliasesOf, key)
}

// Resolve maps a request key through the alias table (one hop).
func (c *Cache) Resolve(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if to, ok := c.alias[key]; ok {
		return to
	}
	return key
}

// Get returns the cached page for key, updating recency and hit/miss
// counters.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	e := el.Value.(*Entry)
	return e, true
}

// Peek returns the entry without touching counters or recency.
func (c *Cache) Peek(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*Entry), true
}

// Put stores a page, evicting the least-recently-used entry if the cache
// is full.
func (c *Cache) Put(e *Entry) {
	if e.StoredAt.IsZero() {
		e.StoredAt = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.Key]; ok {
		old := el.Value.(*Entry)
		c.dropServletRef(old)
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(e)
		c.entries[e.Key] = el
		if c.capacity > 0 && c.lru.Len() > c.capacity {
			c.evictOldest()
		}
	}
	c.addServletRef(e)
	c.stats.Stores++
}

func (c *Cache) addServletRef(e *Entry) {
	if e.Servlet == "" {
		return
	}
	set, ok := c.byServlet[e.Servlet]
	if !ok {
		set = make(map[string]struct{})
		c.byServlet[e.Servlet] = set
	}
	set[e.Key] = struct{}{}
}

func (c *Cache) dropServletRef(e *Entry) {
	if e.Servlet == "" {
		return
	}
	if set, ok := c.byServlet[e.Servlet]; ok {
		delete(set, e.Key)
		if len(set) == 0 {
			delete(c.byServlet, e.Servlet)
		}
	}
}

func (c *Cache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*Entry)
	c.lru.Remove(el)
	delete(c.entries, e.Key)
	c.dropServletRef(e)
	c.dropAliasesLocked(e.Key)
	c.stats.Evictions++
}

// Invalidate removes the page for key, returning whether it was present.
// This is the handler for `Cache-Control: eject`.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	c.lru.Remove(el)
	delete(c.entries, e.Key)
	c.dropServletRef(e)
	c.dropAliasesLocked(e.Key)
	c.stats.Invalidations++
	return true
}

// InvalidateServlet removes every page generated by the named servlet and
// returns how many were removed (used by coarse request-based policies).
func (c *Cache) InvalidateServlet(servlet string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.byServlet[servlet]
	if !ok {
		return 0
	}
	n := 0
	for key := range set {
		if el, ok := c.entries[key]; ok {
			c.lru.Remove(el)
			delete(c.entries, key)
			c.dropAliasesLocked(key)
			c.stats.Invalidations++
			n++
		}
	}
	delete(c.byServlet, servlet)
	return n
}

// InvalidatePrefix removes every page whose key starts with prefix and
// returns the count; used for coarse URL-pattern policies.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.entries {
		if strings.HasPrefix(key, prefix) {
			e := el.Value.(*Entry)
			c.lru.Remove(el)
			delete(c.entries, key)
			c.dropServletRef(e)
			c.dropAliasesLocked(key)
			c.stats.Invalidations++
			n++
		}
	}
	return n
}

// Clear removes everything.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.byServlet = make(map[string]map[string]struct{})
	c.alias = make(map[string]string)
	c.aliasesOf = make(map[string][]string)
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Keys returns all cached keys, most recent first.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Key)
	}
	return out
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}
