// Package webcache implements the dynamic-content web cache of the paper's
// Configuration III: an HTTP reverse proxy that stores pages marked
// `Cache-Control: private, owner="cacheportal"` and evicts them on demand
// when it receives a request carrying the extended `Cache-Control: eject`
// header (the NetCache 4.0 mechanism the paper builds on, §4.2.4). Entries
// are LRU-bounded and keyed by the canonical page identifier the
// application server emits.
//
// The store is N-way sharded by FNV-1a key hash: each shard has its own
// mutex, LRU list, servlet index and statistics, so concurrent requests on
// different keys never contend on a single lock. Capacity is divided
// across shards (eviction is per-shard LRU); small caches collapse to one
// shard and keep exact global LRU semantics.
package webcache

import (
	"container/list"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Entry is one cached page, fragment, or assembly template.
type Entry struct {
	Key         string
	Body        []byte
	ContentType string
	Servlet     string
	StoredAt    time.Time
	// Refs, when non-nil, marks this entry as an assembly template: Body is
	// the skeleton with include markers and Refs names the fragments to
	// splice in. Shared refs carry their canonical fragment key; private
	// refs carry an empty key (the canonical key is per-user — the proxy
	// derives a per-request lookup key and resolves it through the alias
	// table).
	Refs []FragmentRef
}

// FragmentRef names one fragment an assembly template includes.
type FragmentRef struct {
	Name    string
	Key     string // canonical fragment key; "" for private refs
	Private bool
}

// IsTemplate reports whether the entry is an assembly template rather than
// a self-contained body.
func (e *Entry) IsTemplate() bool { return e.Refs != nil }

// Stats are the cache's counters (aggregated across shards).
type Stats struct {
	Hits          int64
	Misses        int64
	Stores        int64
	Invalidations int64 // entries removed by eject requests
	EjectMisses   int64 // eject requests naming keys that were not cached
	Evictions     int64 // entries removed by LRU pressure
}

// HitRatio returns hits/(hits+misses), or 0 when no lookups happened
// (guarded: derived ratios never produce NaN).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// InvalidationPrecision returns the fraction of eject requests that
// removed a live entry — the invalidation-precision figure transparent
// invalidation systems are judged by. 0 when no ejects happened.
func (s Stats) InvalidationPrecision() float64 {
	total := s.Invalidations + s.EjectMisses
	if total == 0 {
		return 0
	}
	return float64(s.Invalidations) / float64(total)
}

// EvictionRate returns evictions per store, or 0 when nothing was stored.
func (s Stats) EvictionRate() float64 {
	if s.Stores == 0 {
		return 0
	}
	return float64(s.Evictions) / float64(s.Stores)
}

// shardEntry wraps an Entry with its global recency stamp (for Keys()).
type shardEntry struct {
	e   *Entry
	seq uint64
}

// cacheShard is one lock domain: a map + LRU list + servlet index + stats.
type cacheShard struct {
	mu        sync.Mutex
	capacity  int                      // 0 = unbounded
	entries   map[string]*list.Element // key → element whose Value is *shardEntry
	lru       *list.List               // front = most recent within this shard
	byServlet map[string]map[string]struct{}
	stats     Stats
}

// stamp returns the next global recency stamp. Single-shard caches skip
// the atomic: their LRU list alone is the exact global order.
func (c *Cache) stamp() uint64 {
	if len(c.shards) == 1 {
		return 0
	}
	return c.seq.Add(1)
}

// Cache is a thread-safe sharded LRU page cache with invalidation. Besides
// direct keys, the cache maintains aliases: the proxy derives a lookup key
// from the raw request, while the origin names the canonical page key (its
// key-spec projection of the request); an alias links the former to the
// latter so subsequent raw requests hit. The alias table is shared across
// shards under its own read-mostly lock.
type Cache struct {
	shards []*cacheShard
	seq    atomic.Uint64 // global recency stamp

	aliasMu   sync.RWMutex
	alias     map[string]string   // request key → canonical key
	aliasesOf map[string][]string // canonical key → its aliases

	// Per-servlet lookup counters, recorded by the proxy outside the shard
	// locks (NoteServlet), under their own mutex. onServlet fires once per
	// newly seen servlet name — after servletMu is released, so metric
	// registration (which snapshots under the obs registry lock) can never
	// invert lock order against a concurrent obs.Snapshot.
	servletMu    sync.Mutex
	servletStats map[string]*Stats
	onServlet    func(name string)
}

// minShardCapacity is the smallest per-shard capacity worth sharding for:
// below it, eviction skew outweighs lock contention, so the shard count is
// reduced (down to 1, which is exact global LRU).
const minShardCapacity = 32

// defaultShardCount sizes the shard set for a capacity: roughly GOMAXPROCS
// rounded up to a power of two (capped at 16), reduced until every shard
// holds at least minShardCapacity pages.
func defaultShardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	if capacity > 0 {
		for n > 1 && capacity/n < minShardCapacity {
			n >>= 1
		}
	}
	return n
}

// NewCache creates a cache holding at most capacity pages (unbounded if
// capacity <= 0), sharded for the machine's parallelism. Small capacities
// get a single shard — exact LRU — automatically.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, 0)
}

// NewCacheSharded creates a cache with an explicit shard count (0 = choose
// automatically, 1 = exact single-LRU semantics). Capacity is divided as
// evenly as possible across shards; the total never exceeds capacity.
func NewCacheSharded(capacity, shards int) *Cache {
	if shards <= 0 {
		shards = defaultShardCount(capacity)
	}
	if capacity > 0 && shards > capacity {
		shards = capacity
	}
	c := &Cache{
		shards:       make([]*cacheShard, shards),
		alias:        make(map[string]string),
		aliasesOf:    make(map[string][]string),
		servletStats: make(map[string]*Stats),
	}
	for i := range c.shards {
		cap := 0
		if capacity > 0 {
			cap = capacity / shards
			if i < capacity%shards {
				cap++
			}
		}
		c.shards[i] = &cacheShard{
			capacity:  cap,
			entries:   make(map[string]*list.Element),
			lru:       list.New(),
			byServlet: make(map[string]map[string]struct{}),
		}
	}
	return c
}

// ShardCount reports how many lock domains the cache uses.
func (c *Cache) ShardCount() int { return len(c.shards) }

// shardFor hashes a key (FNV-1a) to its shard.
func (c *Cache) shardFor(key string) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// Alias records that lookups for from should resolve to canonical key to.
// Identity aliases are ignored.
func (c *Cache) Alias(from, to string) {
	if from == to {
		return
	}
	c.aliasMu.Lock()
	defer c.aliasMu.Unlock()
	if prev, ok := c.alias[from]; ok {
		if prev == to {
			return
		}
		c.removeAliasLocked(prev, from)
	}
	c.alias[from] = to
	c.aliasesOf[to] = append(c.aliasesOf[to], from)
}

func (c *Cache) removeAliasLocked(target, from string) {
	list := c.aliasesOf[target]
	for i, a := range list {
		if a == from {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(c.aliasesOf, target)
	} else {
		c.aliasesOf[target] = list
	}
}

// dropAliases removes every alias pointing at key (called when the entry
// disappears). Safe to call while holding a shard lock: alias code never
// takes shard locks.
func (c *Cache) dropAliases(key string) {
	c.aliasMu.Lock()
	for _, a := range c.aliasesOf[key] {
		delete(c.alias, a)
	}
	delete(c.aliasesOf, key)
	c.aliasMu.Unlock()
}

// Resolve maps a request key through the alias table (one hop).
func (c *Cache) Resolve(key string) string {
	c.aliasMu.RLock()
	defer c.aliasMu.RUnlock()
	if to, ok := c.alias[key]; ok {
		return to
	}
	return key
}

// Get returns the cached page for key, updating recency and hit/miss
// counters.
func (c *Cache) Get(key string) (*Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	se := el.Value.(*shardEntry)
	se.seq = c.stamp()
	s.stats.Hits++
	return se.e, true
}

// Lookup is Get without the miss accounting: recency and the hit counter
// update when the entry is present, but an absent key counts nothing. The
// proxy's fragment path probes several candidate keys per request (full
// request key, then the cookieless template key) and must charge at most
// one miss per page-level lookup.
func (c *Cache) Lookup(key string) (*Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	se := el.Value.(*shardEntry)
	se.seq = c.stamp()
	s.stats.Hits++
	return se.e, true
}

// NoteServlet records one page- or fragment-level lookup outcome against
// the generating servlet. The proxy calls it outside any shard lock; the
// first observation of a servlet name fires the Instrument hook (after the
// servlet lock is released) so a gauge set appears per servlet lazily.
func (c *Cache) NoteServlet(servlet string, hit bool) {
	if servlet == "" {
		return
	}
	c.servletMu.Lock()
	st, ok := c.servletStats[servlet]
	if !ok {
		st = &Stats{}
		c.servletStats[servlet] = st
	}
	if hit {
		st.Hits++
	} else {
		st.Misses++
	}
	hook := c.onServlet
	c.servletMu.Unlock()
	if !ok && hook != nil {
		hook(servlet)
	}
}

// StatsOfServlet returns the named servlet's lookup counters.
func (c *Cache) StatsOfServlet(servlet string) Stats {
	c.servletMu.Lock()
	defer c.servletMu.Unlock()
	if st, ok := c.servletStats[servlet]; ok {
		return *st
	}
	return Stats{}
}

// ServletStats returns a copy of every servlet's lookup counters.
func (c *Cache) ServletStats() map[string]Stats {
	c.servletMu.Lock()
	defer c.servletMu.Unlock()
	out := make(map[string]Stats, len(c.servletStats))
	for name, st := range c.servletStats {
		out[name] = *st
	}
	return out
}

// OnNewServlet installs the lazily-fired per-servlet hook and replays it
// for servlets already observed. Used by Instrument; last writer wins.
func (c *Cache) OnNewServlet(fn func(name string)) {
	c.servletMu.Lock()
	c.onServlet = fn
	known := make([]string, 0, len(c.servletStats))
	for name := range c.servletStats {
		known = append(known, name)
	}
	c.servletMu.Unlock()
	if fn != nil {
		for _, name := range known {
			fn(name)
		}
	}
}

// Peek returns the entry without touching counters or recency.
func (c *Cache) Peek(key string) (*Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*shardEntry).e, true
}

// Put stores a page, evicting the least-recently-used entry of the key's
// shard if that shard is full.
func (c *Cache) Put(e *Entry) {
	if e.StoredAt.IsZero() {
		e.StoredAt = time.Now()
	}
	s := c.shardFor(e.Key)
	seq := c.stamp()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Key]; ok {
		se := el.Value.(*shardEntry)
		s.dropServletRef(se.e)
		se.e, se.seq = e, seq
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&shardEntry{e: e, seq: seq})
		s.entries[e.Key] = el
		if s.capacity > 0 && s.lru.Len() > s.capacity {
			c.evictOldest(s)
		}
	}
	s.addServletRef(e)
	s.stats.Stores++
}

func (s *cacheShard) addServletRef(e *Entry) {
	if e.Servlet == "" {
		return
	}
	set, ok := s.byServlet[e.Servlet]
	if !ok {
		set = make(map[string]struct{})
		s.byServlet[e.Servlet] = set
	}
	set[e.Key] = struct{}{}
}

func (s *cacheShard) dropServletRef(e *Entry) {
	if e.Servlet == "" {
		return
	}
	if set, ok := s.byServlet[e.Servlet]; ok {
		delete(set, e.Key)
		if len(set) == 0 {
			delete(s.byServlet, e.Servlet)
		}
	}
}

// evictOldest removes the shard's LRU victim. Callers hold s.mu.
func (c *Cache) evictOldest(s *cacheShard) {
	el := s.lru.Back()
	if el == nil {
		return
	}
	se := el.Value.(*shardEntry)
	s.lru.Remove(el)
	delete(s.entries, se.e.Key)
	s.dropServletRef(se.e)
	c.dropAliases(se.e.Key)
	s.stats.Evictions++
}

// Invalidate removes the page for key, returning whether it was present.
// This is the handler for `Cache-Control: eject`.
func (c *Cache) Invalidate(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.invalidateLocked(s, key)
}

// invalidateLocked removes key from s. Callers hold s.mu. Ejects naming
// absent keys (already evicted, or never cached) count as EjectMisses so
// the invalidator's precision is observable.
func (c *Cache) invalidateLocked(s *cacheShard, key string) bool {
	el, ok := s.entries[key]
	if !ok {
		s.stats.EjectMisses++
		return false
	}
	se := el.Value.(*shardEntry)
	s.lru.Remove(el)
	delete(s.entries, key)
	s.dropServletRef(se.e)
	c.dropAliases(key)
	s.stats.Invalidations++
	return true
}

// InvalidateMany removes every present page among keys and returns how many
// were removed — the batched `Cache-Control: eject` handler. Keys are
// grouped by shard so each shard's lock is taken once per batch.
func (c *Cache) InvalidateMany(keys []string) int {
	if len(keys) == 0 {
		return 0
	}
	byShard := make(map[*cacheShard][]string, len(c.shards))
	for _, k := range keys {
		s := c.shardFor(k)
		byShard[s] = append(byShard[s], k)
	}
	n := 0
	for s, ks := range byShard {
		s.mu.Lock()
		for _, k := range ks {
			if c.invalidateLocked(s, k) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// InvalidateServlet removes every page generated by the named servlet and
// returns how many were removed (used by coarse request-based policies).
func (c *Cache) InvalidateServlet(servlet string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		set, ok := s.byServlet[servlet]
		if !ok {
			s.mu.Unlock()
			continue
		}
		for key := range set {
			if el, ok := s.entries[key]; ok {
				s.lru.Remove(el)
				delete(s.entries, key)
				c.dropAliases(key)
				s.stats.Invalidations++
				n++
			}
		}
		delete(s.byServlet, servlet)
		s.mu.Unlock()
	}
	return n
}

// InvalidatePrefix removes every page whose key starts with prefix and
// returns the count; used for coarse URL-pattern policies.
func (c *Cache) InvalidatePrefix(prefix string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for key, el := range s.entries {
			if strings.HasPrefix(key, prefix) {
				se := el.Value.(*shardEntry)
				s.lru.Remove(el)
				delete(s.entries, key)
				s.dropServletRef(se.e)
				c.dropAliases(key)
				s.stats.Invalidations++
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Clear removes everything.
func (c *Cache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.byServlet = make(map[string]map[string]struct{})
		s.mu.Unlock()
	}
	c.aliasMu.Lock()
	c.alias = make(map[string]string)
	c.aliasesOf = make(map[string][]string)
	c.aliasMu.Unlock()
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Keys returns all cached keys, most recent first (global recency order —
// the single shard's LRU list directly, or reconstructed from per-entry
// access stamps across shards).
func (c *Cache) Keys() []string {
	if len(c.shards) == 1 {
		s := c.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]string, 0, s.lru.Len())
		for el := s.lru.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*shardEntry).e.Key)
		}
		return out
	}
	type stamped struct {
		key string
		seq uint64
	}
	var all []stamped
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			se := el.Value.(*shardEntry)
			all = append(all, stamped{key: se.e.Key, seq: se.seq})
		}
		s.mu.Unlock()
	}
	// Insertion sort by seq descending; n is small in practice and the
	// per-shard lists arrive mostly ordered.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].seq > all[j-1].seq; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([]string, len(all))
	for i, st := range all {
		out[i] = st.key
	}
	return out
}

// Stats returns the counters aggregated across shards.
func (c *Cache) Stats() Stats {
	var agg Stats
	for _, s := range c.shards {
		s.mu.Lock()
		agg.Hits += s.stats.Hits
		agg.Misses += s.stats.Misses
		agg.Stores += s.stats.Stores
		agg.Invalidations += s.stats.Invalidations
		agg.EjectMisses += s.stats.EjectMisses
		agg.Evictions += s.stats.Evictions
		s.mu.Unlock()
	}
	return agg
}

// StatsOfShard returns shard i's counters (i in [0, ShardCount())), for
// spotting hash skew across lock domains.
func (c *Cache) StatsOfShard(i int) Stats {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes every counter — including the per-shard eviction and
// eject counters and the per-servlet breakdown — atomically with respect to
// each shard (under its lock). Servlet entries are zeroed, not removed, so
// gauges registered for them keep reporting.
func (c *Cache) ResetStats() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.stats = Stats{}
		s.mu.Unlock()
	}
	c.servletMu.Lock()
	for _, st := range c.servletStats {
		*st = Stats{}
	}
	c.servletMu.Unlock()
}
