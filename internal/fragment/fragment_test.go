package fragment

import (
	"bytes"
	"strings"
	"testing"
)

func TestMarkerAndNames(t *testing.T) {
	tmpl := []byte("<html>" + Marker("header") + "<p>x</p>" + Marker("rows") + "</html>")
	names := Names(tmpl)
	if len(names) != 2 || names[0] != "header" || names[1] != "rows" {
		t.Fatalf("Names = %v, want [header rows]", names)
	}
	if Names([]byte("no markers here")) != nil {
		t.Fatalf("Names on plain body should be nil")
	}
}

func TestAssemble(t *testing.T) {
	tmpl := []byte("A" + Marker("x") + "B" + Marker("y") + "C")
	bodies := map[string][]byte{"x": []byte("1"), "y": []byte("22")}
	out, err := Assemble(tmpl, func(n string) ([]byte, bool) { b, ok := bodies[n]; return b, ok })
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if string(out) != "A1B22C" {
		t.Fatalf("Assemble = %q, want A1B22C", out)
	}
}

func TestAssembleMissingFragment(t *testing.T) {
	tmpl := []byte(Marker("gone"))
	_, err := Assemble(tmpl, func(string) ([]byte, bool) { return nil, false })
	if err == nil || !strings.Contains(err.Error(), `"gone"`) {
		t.Fatalf("Assemble with missing fragment: err = %v, want missing-fragment error", err)
	}
}

func TestAssembleNoMarkers(t *testing.T) {
	body := []byte("plain page body")
	out, err := Assemble(body, func(string) ([]byte, bool) { return nil, false })
	if err != nil || !bytes.Equal(out, body) {
		t.Fatalf("Assemble(plain) = %q, %v; want identity", out, err)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"rows", "per-session_trim", "r2.d2"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "a b", "a!b", "x#y", "a<b", "new\nline"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestKeyScheme(t *testing.T) {
	page := "host/home?g:cat=3"
	fk := Key(page, "listing")
	tk := TemplateKey(page)
	if !IsFragmentKey(fk) || !IsFragmentKey(tk) {
		t.Fatalf("fragment/template keys must be recognized: %q %q", fk, tk)
	}
	if IsFragmentKey(page) {
		t.Fatalf("page key %q misclassified as fragment key", page)
	}
	if got := FragmentName(fk); got != "listing" {
		t.Fatalf("FragmentName(%q) = %q", fk, got)
	}
	if got := FragmentName(page); got != "" {
		t.Fatalf("FragmentName(page) = %q, want empty", got)
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	c := &Composite{
		TemplateKey: TemplateKey("h/p?g:cat=1"),
		Template:    []byte(Marker("a") + "|" + Marker("b")),
		ContentType: "text/html; charset=utf-8",
		Servlet:     "home",
		Fragments: []Piece{
			{Ref: Ref{Name: "a", Key: Key("h/p?g:cat=1", "a")}, Body: []byte("shared")},
			{Ref: Ref{Name: "b", Private: true, Key: Key("h/p?g:cat=1&c:s=u1", "b")}, Body: []byte("mine")},
		},
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.TemplateKey != c.TemplateKey || dec.Servlet != "home" || len(dec.Fragments) != 2 {
		t.Fatalf("round trip lost fields: %+v", dec)
	}
	if !dec.Fragments[1].Private || dec.Fragments[1].Name != "b" {
		t.Fatalf("private ref lost: %+v", dec.Fragments[1])
	}
	page, err := dec.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if string(page) != "shared|mine" {
		t.Fatalf("assembled = %q", page)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatalf("Decode(garbage) should fail")
	}
	if _, err := Decode([]byte(`{"template":"aGk="}`)); err == nil {
		t.Fatalf("Decode without template key should fail")
	}
}
