// Package fragment is the shared vocabulary of fragment-level caching: the
// include-marker syntax assembly templates use, the key scheme that names
// fragments and templates as first-class cache keys, the Assemble splice,
// and the composite wire format the application server uses to hand a
// fragmented page — template plus named pieces — to the web cache in one
// response. Both ends import this package and nothing of each other, so the
// cache stays deployable without the app server (the paper's independence
// requirement, §2.1); Vcache's independently-invalidatable document
// fragments are the precedent.
package fragment

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Header names of the fragment negotiation between cache and origin.
const (
	// CompositeHeader negotiates fragment-structured responses. A
	// fragment-aware cache sends "CompositeHeader: accept" on a full-page
	// miss; a fragment-mode origin answers a cacheable fragmented page with
	// "CompositeHeader: 1" and a composite-encoded body. Clients that never
	// send the header get ordinary assembled pages, so non-fragment-aware
	// caches keep working unchanged.
	CompositeHeader = "X-Cacheportal-Composite"
	// CompositeAccept is the request value announcing composite support.
	CompositeAccept = "accept"
	// CompositeYes is the response value marking a composite-encoded body.
	CompositeYes = "1"
	// FragmentHeader asks the origin for one named fragment of the page
	// (the cache's fill path when assembly finds a single piece missing).
	FragmentHeader = "X-Cacheportal-Fragment"
	// ContentType marks composite-encoded bodies in transit.
	ContentType = "application/x-cacheportal-composite"
)

// Marker syntax: the assembly template embeds one include marker per
// fragment; Assemble splices fragment bodies over them.
const (
	markerPrefix = "<!--#cacheportal-fragment "
	markerSuffix = "-->"
)

// Marker renders the include marker for a named fragment.
func Marker(name string) string { return markerPrefix + name + markerSuffix }

// ValidName reports whether name is usable as a fragment name: non-empty
// and free of characters that would break the marker syntax or the key
// scheme (spaces, '-->', '!', '#').
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	return !strings.ContainsAny(name, " \t\r\n!#<>&")
}

// Names returns the fragment names referenced by template markers, in
// template order (duplicates preserved).
func Names(template []byte) []string {
	var names []string
	forEachMarker(template, func(name string, _, _ int) bool {
		names = append(names, name)
		return true
	})
	return names
}

// forEachMarker scans template for include markers, calling fn with each
// marker's name and [start, end) byte range until fn returns false.
func forEachMarker(template []byte, fn func(name string, start, end int) bool) {
	s := string(template)
	for off := 0; ; {
		i := strings.Index(s[off:], markerPrefix)
		if i < 0 {
			return
		}
		start := off + i
		rest := s[start+len(markerPrefix):]
		j := strings.Index(rest, markerSuffix)
		if j < 0 {
			return
		}
		end := start + len(markerPrefix) + j + len(markerSuffix)
		if !fn(rest[:j], start, end) {
			return
		}
		off = end
	}
}

// Assemble splices fragment bodies over the template's include markers.
// lookup returns the body for a fragment name; a false return aborts with
// an error naming the missing fragment, so callers can fall back to the
// origin instead of serving a page with holes.
func Assemble(template []byte, lookup func(name string) ([]byte, bool)) ([]byte, error) {
	var out []byte
	last := 0
	var missing string
	forEachMarker(template, func(name string, start, end int) bool {
		body, ok := lookup(name)
		if !ok {
			missing = name
			return false
		}
		out = append(out, template[last:start]...)
		out = append(out, body...)
		last = end
		return true
	})
	if missing != "" {
		return nil, fmt.Errorf("fragment: assemble: missing fragment %q", missing)
	}
	out = append(out, template[last:]...)
	return out, nil
}

// Key scheme: fragments and templates are ordinary cache keys derived from
// a page key, so every key-carrying stage of the pipeline — the QI/URL map,
// the registry, eject batches, retry lists, trace spans — operates at
// fragment granularity without change. The separators cannot collide with
// canonical page keys ('!' never appears in the "g:"/"p:"/"c:" part
// encoding).
const (
	keySep         = "!frag="
	templateSuffix = "!tmpl"
)

// Key names one fragment of a page: shared fragments derive from the page
// key with cookie parts projected away, private fragments from the full
// (cookie-bearing) page key.
func Key(pageKey, name string) string { return pageKey + keySep + name }

// TemplateKey names a page's assembly template (always shared: per-user
// content must live in private fragments, never in the skeleton).
func TemplateKey(pageKey string) string { return pageKey + templateSuffix }

// IsFragmentKey reports whether key names a fragment or a template rather
// than a whole page.
func IsFragmentKey(key string) bool {
	return strings.Contains(key, keySep) || strings.HasSuffix(key, templateSuffix)
}

// FragmentName extracts the fragment name from a fragment key ("" for
// template and page keys).
func FragmentName(key string) string {
	if i := strings.LastIndex(key, keySep); i >= 0 {
		return key[i+len(keySep):]
	}
	return ""
}

// Ref names one fragment a template includes. Private refs carry an empty
// Key: the canonical private key is per-user, so the cache derives a
// per-request lookup key and resolves it through its alias table instead.
type Ref struct {
	Name    string `json:"name"`
	Key     string `json:"key,omitempty"`
	Private bool   `json:"private,omitempty"`
}

// Piece is one fragment with its body, as shipped in a composite response.
type Piece struct {
	Ref
	Body []byte `json:"body"`
}

// Composite is the origin→cache transfer of a fragmented page: the
// assembly template under its key, plus every fragment under its own key.
// The cache stores each piece independently and assembles the client's
// page; one transfer seeds N independently-invalidatable entries.
type Composite struct {
	TemplateKey string  `json:"template_key"`
	Template    []byte  `json:"template"`
	ContentType string  `json:"content_type"`
	Servlet     string  `json:"servlet"`
	Fragments   []Piece `json:"fragments"`
}

// Encode renders the composite for transport.
func (c *Composite) Encode() ([]byte, error) { return json.Marshal(c) }

// Decode parses a composite body.
func Decode(b []byte) (*Composite, error) {
	var c Composite
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("fragment: decode composite: %w", err)
	}
	if c.TemplateKey == "" {
		return nil, fmt.Errorf("fragment: decode composite: missing template key")
	}
	return &c, nil
}

// Assemble builds the full page from the composite's own pieces (the
// cache's serve-on-miss path, and the equivalence oracle in tests).
func (c *Composite) Assemble() ([]byte, error) {
	byName := make(map[string][]byte, len(c.Fragments))
	for _, p := range c.Fragments {
		byName[p.Name] = p.Body
	}
	return Assemble(c.Template, func(name string) ([]byte, bool) {
		b, ok := byName[name]
		return b, ok
	})
}
