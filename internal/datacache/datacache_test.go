package datacache

import (
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/mem"
)

func newCache(t *testing.T, capacity int) (*DataCache, *engine.Database) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
		CREATE TABLE Mileage (model TEXT, EPA INT);
		INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000);
		INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31);
	`); err != nil {
		t.Fatal(err)
	}
	pool, err := driver.NewPool(driver.DirectDriver{DB: db}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return New(pool, capacity), db
}

func TestSelectCachedOnSecondAccess(t *testing.T) {
	dc, _ := newCache(t, 0)
	q := "SELECT * FROM Car WHERE price < 15500"
	r1, err := dc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 1 || len(r2.Rows) != 1 {
		t.Fatalf("rows: %v / %v", r1.Rows, r2.Rows)
	}
	st := dc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDMLPassesThroughAndInvalidates(t *testing.T) {
	dc, db := newCache(t, 0)
	q := "SELECT COUNT(*) FROM Car"
	r, _ := dc.Query(q)
	if r.Rows[0][0] != mem.Int(2) {
		t.Fatalf("count: %v", r.Rows[0][0])
	}
	if _, err := dc.Query("INSERT INTO Car VALUES ('Kia', 'Rio', 12000)"); err != nil {
		t.Fatal(err)
	}
	// Same client sees its own write (local invalidation on DML).
	r, _ = dc.Query(q)
	if r.Rows[0][0] != mem.Int(3) {
		t.Fatalf("count after insert: %v", r.Rows[0][0])
	}
	// And the DML really reached the database.
	res, _ := db.ExecSQL("SELECT COUNT(*) FROM Car")
	if res.Rows[0][0] != mem.Int(3) {
		t.Fatalf("db count: %v", res.Rows[0][0])
	}
	if dc.Stats().Passthrough != 1 {
		t.Fatalf("stats: %+v", dc.Stats())
	}
}

func TestSyncInvalidatesChangedTables(t *testing.T) {
	dc, db := newCache(t, 0)
	dc.Query("SELECT * FROM Car")
	dc.Query("SELECT * FROM Mileage")
	dc.Query("SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model")
	if dc.Len() != 3 {
		t.Fatalf("len: %d", dc.Len())
	}
	// Out-of-band update (another app server / backend process).
	if _, err := db.ExecSQL("UPDATE Car SET price = 1 WHERE maker = 'Kia'"); err != nil {
		t.Fatal(err)
	}
	db.ExecSQL("INSERT INTO Car VALUES ('Ford', 'Ka', 9000)")
	n, err := dc.Sync(EngineLogPuller{Log: db.Log()})
	if err != nil {
		t.Fatal(err)
	}
	// Initial data load is also in the log, so the first sync invalidates
	// Car- and Mileage-dependent entries: all 3.
	if n != 3 || dc.Len() != 0 {
		t.Fatalf("n=%d len=%d", n, dc.Len())
	}
	// Fresh queries repopulate; a second sync with no new updates keeps them.
	dc.Query("SELECT * FROM Car")
	n, _ = dc.Sync(EngineLogPuller{Log: db.Log()})
	if n != 0 || dc.Len() != 1 {
		t.Fatalf("second sync: n=%d len=%d", n, dc.Len())
	}
	if dc.Stats().Syncs != 2 {
		t.Fatalf("stats: %+v", dc.Stats())
	}
}

func TestSyncAfterTruncationDropsEverything(t *testing.T) {
	db := engine.NewDatabase()
	db.ExecScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
	pool, _ := driver.NewPool(driver.DirectDriver{DB: db}, "", 1)
	defer pool.Close()
	dc := New(pool, 0)
	dc.Query("SELECT * FROM t")
	dc.Sync(EngineLogPuller{Log: db.Log()}) // catch up

	// Overflow a tiny log to force truncation: swap in a tiny log by
	// appending many updates to the default one and syncing from behind.
	dc2 := New(pool, 0)
	dc2.Query("SELECT * FROM t")
	small := engine.NewUpdateLog(2)
	for i := 0; i < 10; i++ {
		small.Append(engine.UpdateRecord{Table: "unrelated", Op: engine.OpInsert})
	}
	n, err := dc2.Sync(EngineLogPuller{Log: small})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || dc2.Len() != 0 {
		t.Fatalf("truncated sync must flush: n=%d len=%d", n, dc2.Len())
	}
}

func TestCapacityEviction(t *testing.T) {
	dc, _ := newCache(t, 2)
	dc.Query("SELECT * FROM Car")
	dc.Query("SELECT * FROM Mileage")
	dc.Query("SELECT COUNT(*) FROM Car")
	if dc.Len() != 2 {
		t.Fatalf("len: %d", dc.Len())
	}
}

func TestInvalidateTableCrossRef(t *testing.T) {
	dc, _ := newCache(t, 0)
	dc.Query("SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model")
	if n := dc.InvalidateTable("mileage"); n != 1 {
		t.Fatalf("n=%d", n)
	}
	if n := dc.InvalidateTable("car"); n != 0 {
		t.Fatalf("join entry should already be gone, n=%d", n)
	}
}

func TestAccessDelay(t *testing.T) {
	dc, _ := newCache(t, 0)
	dc.AccessDelay = 30 * time.Millisecond
	start := time.Now()
	dc.Query("SELECT * FROM Car")
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("access delay not applied")
	}
}

func TestBadSQL(t *testing.T) {
	dc, _ := newCache(t, 0)
	if _, err := dc.Query("SELEKT"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestDriverIntegration(t *testing.T) {
	dc, _ := newCache(t, 0)
	conn, err := Driver{Cache: dc}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r, err := conn.Query("SELECT COUNT(*) FROM Car")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != mem.Int(2) {
		t.Fatalf("count: %v", r.Rows[0][0])
	}
	if _, err := (Driver{}).Connect(""); err == nil {
		t.Fatal("nil cache must fail")
	}
}

func TestSyncLoop(t *testing.T) {
	dc, db := newCache(t, 0)
	dc.Query("SELECT * FROM Car")
	stop := make(chan struct{})
	dc.StartSyncLoop(EngineLogPuller{Log: db.Log()}, 10*time.Millisecond, stop)
	db.ExecSQL("INSERT INTO Car VALUES ('X', 'Y', 1)")
	deadline := time.After(2 * time.Second)
	for dc.Len() != 0 {
		select {
		case <-deadline:
			t.Fatal("sync loop did not invalidate")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
}
