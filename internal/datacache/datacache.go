// Package datacache implements the middle-tier database cache of the
// paper's Configuration II (§1.2): a query-result cache that sits between
// the application server and the single shared DBMS, in the style of the
// Oracle 8i data cache. Results of SELECT statements are cached by query
// text; a synchronization daemon polls the database's update log and
// invalidates every cached result whose underlying tables changed — the
// "heavy database-cache synchronization" the paper contrasts with
// Configuration III's page-level invalidation.
package datacache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Passthrough   int64 // non-SELECT statements forwarded to the DBMS
	Invalidations int64
	Syncs         int64
}

// HitRatio returns hits/(hits+misses) over SELECTs, 0 when idle.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// LogPuller abstracts how the cache reads the database's update log: over
// the wire (wire.Client.LogSince) or in-process (engine.UpdateLog.Since).
type LogPuller interface {
	// PullSince returns records with LSN >= lsn, a truncation flag, and the
	// next LSN to poll from.
	PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error)
}

// EngineLogPuller adapts an in-process engine.UpdateLog.
type EngineLogPuller struct{ Log *engine.UpdateLog }

// PullSince implements LogPuller.
func (p EngineLogPuller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	recs, trunc := p.Log.Since(lsn)
	return recs, trunc, p.Log.NextLSN(), nil
}

type cached struct {
	sql    string
	result *engine.Result
	tables map[string]struct{} // lower-cased base tables
}

// DataCache caches SELECT results in front of a backing connection pool.
type DataCache struct {
	pool *driver.Pool

	// AccessDelay models the cost of reaching the cache itself. Table 2's
	// experiments assume it is negligible (zero); Table 3's model the cache
	// as a local DBMS whose connection establishment is expensive.
	AccessDelay time.Duration

	mu       sync.Mutex
	capacity int
	items    map[string]*list.Element
	lru      *list.List
	byTable  map[string]map[string]struct{} // table → set of cached SQL keys
	lastLSN  int64
	stats    Stats
}

// New creates a data cache over pool holding at most capacity results
// (unbounded if capacity <= 0).
func New(pool *driver.Pool, capacity int) *DataCache {
	return &DataCache{
		pool:     pool,
		capacity: capacity,
		items:    make(map[string]*list.Element),
		lru:      list.New(),
		byTable:  make(map[string]map[string]struct{}),
		lastLSN:  1,
	}
}

// Query serves sql: SELECTs are answered from cache when possible, DML and
// DDL pass through to the DBMS (and conservatively invalidate the affected
// table's cached results immediately, keeping this cache's own clients
// read-your-writes consistent; cross-client changes arrive via Sync).
func (d *DataCache) Query(sql string) (*engine.Result, error) {
	if d.AccessDelay > 0 {
		time.Sleep(d.AccessDelay)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, isSelect := stmt.(*sqlparser.SelectStmt)
	if !isSelect {
		d.mu.Lock()
		d.stats.Passthrough++
		d.mu.Unlock()
		res, err := d.forward(sql)
		if err == nil {
			d.invalidateForStmt(stmt)
		}
		return res, err
	}

	key := strings.TrimSpace(sql)
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		d.lru.MoveToFront(el)
		d.stats.Hits++
		res := el.Value.(*cached).result
		d.mu.Unlock()
		return res, nil
	}
	d.stats.Misses++
	d.mu.Unlock()

	res, err := d.forward(sql)
	if err != nil {
		return nil, err
	}
	tables := map[string]struct{}{}
	for _, ref := range sel.Tables() {
		tables[strings.ToLower(ref.Name)] = struct{}{}
	}
	d.store(&cached{sql: key, result: res, tables: tables})
	return res, nil
}

func (d *DataCache) forward(sql string) (*engine.Result, error) {
	lease, err := d.pool.Get()
	if err != nil {
		return nil, err
	}
	defer lease.Release()
	return lease.Query(sql)
}

func (d *DataCache) store(c *cached) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.items[c.sql]; ok {
		d.detach(el.Value.(*cached))
		el.Value = c
		d.lru.MoveToFront(el)
	} else {
		el := d.lru.PushFront(c)
		d.items[c.sql] = el
		if d.capacity > 0 && d.lru.Len() > d.capacity {
			oldest := d.lru.Back()
			if oldest != nil {
				oc := oldest.Value.(*cached)
				d.lru.Remove(oldest)
				delete(d.items, oc.sql)
				d.detach(oc)
			}
		}
	}
	for t := range c.tables {
		set, ok := d.byTable[t]
		if !ok {
			set = make(map[string]struct{})
			d.byTable[t] = set
		}
		set[c.sql] = struct{}{}
	}
}

func (d *DataCache) detach(c *cached) {
	for t := range c.tables {
		if set, ok := d.byTable[t]; ok {
			delete(set, c.sql)
			if len(set) == 0 {
				delete(d.byTable, t)
			}
		}
	}
}

// invalidateForStmt drops cached results that reference the table a DML/DDL
// statement touched.
func (d *DataCache) invalidateForStmt(stmt sqlparser.Stmt) {
	var table string
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		table = s.Table
	case *sqlparser.UpdateStmt:
		table = s.Table
	case *sqlparser.DeleteStmt:
		table = s.Table
	case *sqlparser.DropTableStmt:
		table = s.Table
	default:
		return
	}
	d.InvalidateTable(table)
}

// InvalidateTable drops every cached result referencing the table and
// returns the count.
func (d *DataCache) InvalidateTable(table string) int {
	key := strings.ToLower(table)
	d.mu.Lock()
	defer d.mu.Unlock()
	set, ok := d.byTable[key]
	if !ok {
		return 0
	}
	n := 0
	for sql := range set {
		if el, ok := d.items[sql]; ok {
			c := el.Value.(*cached)
			d.lru.Remove(el)
			delete(d.items, sql)
			// remove from every table set, not only this one
			for t := range c.tables {
				if s2, ok := d.byTable[t]; ok && t != key {
					delete(s2, sql)
					if len(s2) == 0 {
						delete(d.byTable, t)
					}
				}
			}
			d.stats.Invalidations++
			n++
		}
	}
	delete(d.byTable, key)
	return n
}

// Sync pulls the update log through p and invalidates cached results whose
// tables changed; the paper models this as one log-fetch query per cache
// per second (§5.2.5). It returns how many results were invalidated.
func (d *DataCache) Sync(p LogPuller) (int, error) {
	d.mu.Lock()
	last := d.lastLSN
	d.mu.Unlock()
	recs, truncated, next, err := p.PullSince(last)
	if err != nil {
		return 0, fmt.Errorf("datacache: sync: %w", err)
	}
	n := 0
	if truncated {
		// Missed part of the log: every cached result may be stale.
		d.mu.Lock()
		n = d.lru.Len()
		d.items = make(map[string]*list.Element)
		d.lru.Init()
		d.byTable = make(map[string]map[string]struct{})
		d.stats.Invalidations += int64(n)
		d.mu.Unlock()
	} else {
		seen := map[string]struct{}{}
		for _, rec := range recs {
			key := strings.ToLower(rec.Table)
			if _, done := seen[key]; done {
				continue
			}
			seen[key] = struct{}{}
			n += d.InvalidateTable(rec.Table)
		}
	}
	d.mu.Lock()
	d.lastLSN = next
	d.stats.Syncs++
	d.mu.Unlock()
	return n, nil
}

// StartSyncLoop runs Sync every interval until stop is closed.
func (d *DataCache) StartSyncLoop(p LogPuller, interval time.Duration, stop <-chan struct{}) {
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				d.Sync(p) // best effort; next tick retries
			}
		}
	}()
}

// Len returns the number of cached results.
func (d *DataCache) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// Stats returns a copy of the counters.
func (d *DataCache) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ---------------------------------------------------------------------------
// driver integration
// ---------------------------------------------------------------------------

// Driver exposes the data cache as a driver.Driver so servlets use it
// exactly like a direct database connection (Configuration II wiring).
type Driver struct{ Cache *DataCache }

// Connect returns a connection backed by the shared cache.
func (d Driver) Connect(string) (driver.Conn, error) {
	if d.Cache == nil {
		return nil, fmt.Errorf("datacache: driver has no cache")
	}
	return conn{cache: d.Cache}, nil
}

type conn struct{ cache *DataCache }

func (c conn) Query(sql string) (*engine.Result, error) { return c.cache.Query(sql) }
func (c conn) Close() error                             { return nil }
