package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRequestGenIssuesAndMeasures(t *testing.T) {
	var served int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt64(&served, 1)
		if n%2 == 0 {
			w.Header().Set("X-Cacheportal-Cache", "hit")
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	g := NewRequestGen(200, 1, ts.URL+"/a", ts.URL+"/b")
	stats := g.Run(200 * time.Millisecond)
	if stats.Requests() < 10 {
		t.Fatalf("requests: %d", stats.Requests())
	}
	if stats.Errors() != 0 {
		t.Fatalf("errors: %d", stats.Errors())
	}
	if hr := stats.HitRatio(); hr < 0.2 || hr > 0.8 {
		t.Fatalf("hit ratio: %f", hr)
	}
	if stats.MeanLatency() <= 0 || stats.MaxLatency() < stats.MeanLatency() {
		t.Fatalf("latency stats: %v %v", stats.MeanLatency(), stats.MaxLatency())
	}
}

func TestRequestGenCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	g := NewRequestGen(100, 2, ts.URL)
	stats := g.Run(100 * time.Millisecond)
	if stats.Errors() == 0 || stats.Errors() != stats.Requests() {
		t.Fatalf("errors %d of %d", stats.Errors(), stats.Requests())
	}
	if stats.HitRatio() != 0 || stats.MeanLatency() != 0 {
		t.Fatal("failed requests must not contribute")
	}
}

func TestRequestGenZeroRate(t *testing.T) {
	g := NewRequestGen(0, 1, "http://x")
	stats := g.Run(50 * time.Millisecond)
	if stats.Requests() != 0 {
		t.Fatalf("requests: %d", stats.Requests())
	}
}

func TestRequestGenWeights(t *testing.T) {
	var a, b int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/a") {
			atomic.AddInt64(&a, 1)
		} else {
			atomic.AddInt64(&b, 1)
		}
	}))
	defer ts.Close()
	g := NewRequestGen(400, 3, ts.URL+"/a", ts.URL+"/b")
	g.Weights = []float64{9, 1}
	g.Run(250 * time.Millisecond)
	if a <= b*2 {
		t.Fatalf("weights ignored: a=%d b=%d", a, b)
	}
}

func TestRequestGenZipf(t *testing.T) {
	counts := make([]int64, 4)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var i int
		fmt.Sscanf(r.URL.Path, "/p%d", &i)
		atomic.AddInt64(&counts[i], 1)
	}))
	defer ts.Close()
	urls := make([]string, 4)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/p%d", ts.URL, i)
	}
	g := NewRequestGen(400, 4, urls...).WithZipf(1.5)
	g.Run(250 * time.Millisecond)
	if counts[0] <= counts[3] {
		t.Fatalf("zipf head should dominate: %v", counts)
	}
}

func TestRequestGenOnResult(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	var n int64
	g := NewRequestGen(100, 5, ts.URL)
	g.OnResult = func(Result) { atomic.AddInt64(&n, 1) }
	stats := g.Run(100 * time.Millisecond)
	if n != stats.Requests() {
		t.Fatalf("callback count %d != %d", n, stats.Requests())
	}
}

func TestUpdateGen(t *testing.T) {
	var issued int64
	target := ExecFunc(func(sql string) error {
		atomic.AddInt64(&issued, 1)
		if strings.Contains(sql, "fail") {
			return errors.New("nope")
		}
		return nil
	})
	i := 0
	g := NewUpdateGen(200, 6, target, func(*rand.Rand) string {
		i++
		if i%5 == 0 {
			return "fail"
		}
		return "INSERT INTO t VALUES (1)"
	})
	total, failed := g.Run(150 * time.Millisecond)
	if total < 5 || int64(total) != atomic.LoadInt64(&issued) {
		t.Fatalf("issued %d (target saw %d)", total, issued)
	}
	if failed == 0 || failed >= total {
		t.Fatalf("failed %d of %d", failed, total)
	}
}

func TestUpdateGenZeroRate(t *testing.T) {
	g := NewUpdateGen(0, 1, ExecFunc(func(string) error { return nil }), func(*rand.Rand) string { return "" })
	if n, _ := g.Run(30 * time.Millisecond); n != 0 {
		t.Fatalf("issued %d", n)
	}
}

func TestPaperUpdateStatement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stmt := PaperUpdateStatement("small", "large")
	sawInsert, sawDelete, sawSmall, sawLarge := false, false, false, false
	for i := 0; i < 100; i++ {
		s := stmt(rng)
		if strings.HasPrefix(s, "INSERT") {
			sawInsert = true
		}
		if strings.HasPrefix(s, "DELETE") {
			sawDelete = true
		}
		if strings.Contains(s, "small") {
			sawSmall = true
		}
		if strings.Contains(s, "large") {
			sawLarge = true
		}
	}
	if !sawInsert || !sawDelete || !sawSmall || !sawLarge {
		t.Fatalf("mix incomplete: ins=%v del=%v small=%v large=%v", sawInsert, sawDelete, sawSmall, sawLarge)
	}
}

func TestSessionMixIssuesPersonalizedRequests(t *testing.T) {
	var mu sync.Mutex
	users := map[string]int{}
	flash := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := r.Cookie("session")
		if err != nil {
			t.Errorf("request without session cookie")
			fmt.Fprint(w, "ok")
			return
		}
		mu.Lock()
		users[c.Value]++
		if r.URL.Path == "/flash" {
			flash++
		}
		mu.Unlock()
		if users[c.Value] > 1 {
			w.Header().Set("X-Cacheportal-Cache", "partial")
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	g := NewSessionMix(400, 7, 3, ts.URL+"/home")
	g.FlashURL = ts.URL + "/flash"
	g.FlashFraction = 0.5
	stats := g.Run(300 * time.Millisecond)
	if stats.Requests() < 20 || stats.Errors() != 0 {
		t.Fatalf("requests=%d errors=%d", stats.Requests(), stats.Errors())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(users) != 3 {
		t.Fatalf("user population: %v", users)
	}
	// Flash crowd gets roughly half the traffic.
	if frac := float64(flash) / float64(stats.Requests()); frac < 0.2 || frac > 0.8 {
		t.Fatalf("flash fraction: %f", frac)
	}
	// Repeat visits answered "partial" are accounted separately from hits.
	if stats.PartialRatio() == 0 || stats.HitRatio() != 0 {
		t.Fatalf("partial=%f hit=%f", stats.PartialRatio(), stats.HitRatio())
	}
}

func TestSessionMixZeroConfig(t *testing.T) {
	if n := NewSessionMix(0, 1, 3, "http://x").Run(30 * time.Millisecond).Requests(); n != 0 {
		t.Fatalf("zero rate issued %d", n)
	}
	if n := NewSessionMix(100, 1, 0, "http://x").Run(30 * time.Millisecond).Requests(); n != 0 {
		t.Fatalf("zero users issued %d", n)
	}
}
