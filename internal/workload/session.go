package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
)

// SessionMix drives the personalized-session scenario of the fragment
// evaluation: a population of distinct users, each carrying its own
// session cookie, requesting personalized pages. At page granularity every
// (user, URL) pair is a distinct cache entry, so the hit ratio is bounded
// by repeat visits of the *same* user; at fragment granularity the shared
// fragments are one entry per URL and every user after the first assembles
// from cache. An optional flash crowd concentrates a fraction of traffic
// on one URL — the worst case for page caching with personalization, the
// best case for shared-fragment reuse.
type SessionMix struct {
	// Rate is mean requests per second (Poisson arrivals).
	Rate float64
	// Users is the population size; each request is issued by a uniformly
	// chosen user whose cookie is "u<N>".
	Users int
	// URLs are the personalized page targets (uniform selection).
	URLs []string
	// FlashURL, when non-empty, receives FlashFraction of all requests
	// regardless of URLs — the flash crowd on one shared resource.
	FlashURL      string
	FlashFraction float64
	// CookieName defaults to "session".
	CookieName string
	// Client defaults to httpx.Default().
	Client *http.Client
	// OnResult, when set, observes every completed request.
	OnResult func(Result)

	rng *rand.Rand
	mu  sync.Mutex // guards rng: arrivals run on one goroutine, but keep it safe
}

// NewSessionMix creates a session-mix generator with a deterministic seed.
func NewSessionMix(rate float64, seed int64, users int, urls ...string) *SessionMix {
	return &SessionMix{
		Rate:  rate,
		Users: users,
		URLs:  urls,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (g *SessionMix) cookieName() string {
	if g.CookieName == "" {
		return "session"
	}
	return g.CookieName
}

// Run issues requests for the duration and returns the stats, blocking
// until in-flight requests complete.
func (g *SessionMix) Run(d time.Duration) *Stats {
	stats := &Stats{}
	if g.Rate <= 0 || (len(g.URLs) == 0 && g.FlashURL == "") || g.Users <= 0 {
		return stats
	}
	client := httpx.Client(g.Client)
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		g.mu.Lock()
		user := fmt.Sprintf("u%d", g.rng.Intn(g.Users))
		url := g.FlashURL
		if url == "" || (len(g.URLs) > 0 && g.rng.Float64() >= g.FlashFraction) {
			url = g.URLs[g.rng.Intn(len(g.URLs))]
		}
		gap := time.Duration(g.rng.ExpFloat64() * float64(time.Second) / g.Rate)
		g.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := g.one(client, url, user)
			stats.add(res)
			if g.OnResult != nil {
				g.OnResult(res)
			}
		}()
		time.Sleep(gap)
	}
	wg.Wait()
	return stats
}

// one performs a single request as the given user.
func (g *SessionMix) one(client *http.Client, url, user string) Result {
	start := time.Now()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return Result{URL: url, Err: err}
	}
	req.AddCookie(&http.Cookie{Name: g.cookieName(), Value: user})
	resp, err := client.Do(req)
	r := Result{URL: url, Latency: time.Since(start), Err: err}
	if err != nil {
		return r
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	r.Latency = time.Since(start)
	r.Status = resp.StatusCode
	switch strings.ToLower(resp.Header.Get("X-Cacheportal-Cache")) {
	case "hit":
		r.CacheHit = true
	case "partial":
		r.CachePartial = true
	}
	return r
}
