// Package workload implements the paper's request and update generators
// (§5.2.2–5.2.3) for driving a *live* site over HTTP and SQL — the RG/UG
// boxes of Figures 2–4. (The simulation experiments have their own arrival
// processes inside internal/configs; this package exercises the real
// stack.)
package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
)

// Result of one generated request.
type Result struct {
	URL     string
	Latency time.Duration
	Status  int
	// CacheHit is a full cache hit; CachePartial means the edge assembled
	// the page from cached fragments but had to fetch at least one from
	// the origin (fragment mode only). At most one of the two is set.
	CacheHit     bool
	CachePartial bool
	Err          error
}

// Stats aggregates request results.
type Stats struct {
	mu       sync.Mutex
	n        int64
	errs     int64
	hits     int64
	partials int64
	totalLat time.Duration
	maxLat   time.Duration
}

func (s *Stats) add(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if r.Err != nil || r.Status >= 500 {
		s.errs++
		return
	}
	if r.CacheHit {
		s.hits++
	} else if r.CachePartial {
		s.partials++
	}
	s.totalLat += r.Latency
	if r.Latency > s.maxLat {
		s.maxLat = r.Latency
	}
}

// Requests returns how many requests were issued.
func (s *Stats) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Errors returns how many failed.
func (s *Stats) Errors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs
}

// HitRatio returns the fraction of successful requests served by a cache.
func (s *Stats) HitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.n - s.errs
	if ok == 0 {
		return 0
	}
	return float64(s.hits) / float64(ok)
}

// PartialRatio returns the fraction of successful requests the edge
// assembled from cache but completed with at least one origin fragment
// fetch. Zero outside fragment mode.
func (s *Stats) PartialRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.n - s.errs
	if ok == 0 {
		return 0
	}
	return float64(s.partials) / float64(ok)
}

// MeanLatency returns the average latency of successful requests.
func (s *Stats) MeanLatency() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.n - s.errs
	if ok == 0 {
		return 0
	}
	return s.totalLat / time.Duration(ok)
}

// MaxLatency returns the slowest successful request.
func (s *Stats) MaxLatency() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLat
}

// RequestGen issues Poisson-arrival GET requests to a weighted URL set.
type RequestGen struct {
	// Rate is mean requests per second.
	Rate float64
	// URLs are the candidate targets; Weights (same length, optional)
	// bias selection. With a Zipf source set, URLs are ranked by
	// popularity instead.
	URLs    []string
	Weights []float64
	// Zipf, when non-nil, picks URL indexes by Zipf rank (popular-first).
	Zipf *rand.Zipf
	// Client defaults to httpx.Default(), the shared pooled client with
	// sane timeouts.
	Client *http.Client
	// OnResult, when set, observes every completed request.
	OnResult func(Result)

	rng *rand.Rand
}

// NewRequestGen creates a generator with a deterministic seed.
func NewRequestGen(rate float64, seed int64, urls ...string) *RequestGen {
	return &RequestGen{Rate: rate, URLs: urls, rng: rand.New(rand.NewSource(seed))}
}

// WithZipf makes URL selection Zipf-distributed with parameter s > 1 over
// the URL list (index 0 most popular).
func (g *RequestGen) WithZipf(s float64) *RequestGen {
	g.Zipf = rand.NewZipf(g.rng, s, 1, uint64(len(g.URLs)-1))
	return g
}

func (g *RequestGen) pick() string {
	switch {
	case g.Zipf != nil:
		return g.URLs[int(g.Zipf.Uint64())]
	case len(g.Weights) == len(g.URLs) && len(g.URLs) > 0:
		total := 0.0
		for _, w := range g.Weights {
			total += w
		}
		x := g.rng.Float64() * total
		for i, w := range g.Weights {
			x -= w
			if x < 0 {
				return g.URLs[i]
			}
		}
		return g.URLs[len(g.URLs)-1]
	default:
		return g.URLs[g.rng.Intn(len(g.URLs))]
	}
}

func (g *RequestGen) client() *http.Client {
	return httpx.Client(g.Client)
}

// Run issues requests for the given duration (Poisson arrivals, each
// request served in its own goroutine) and returns the stats. It blocks
// until in-flight requests complete.
func (g *RequestGen) Run(d time.Duration) *Stats {
	stats := &Stats{}
	if g.Rate <= 0 || len(g.URLs) == 0 {
		return stats
	}
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		url := g.pick()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := g.one(url)
			stats.add(res)
			if g.OnResult != nil {
				g.OnResult(res)
			}
		}()
		gap := time.Duration(g.rng.ExpFloat64() * float64(time.Second) / g.Rate)
		time.Sleep(gap)
	}
	wg.Wait()
	return stats
}

// one performs a single request.
func (g *RequestGen) one(url string) Result {
	start := time.Now()
	resp, err := g.client().Get(url)
	r := Result{URL: url, Latency: time.Since(start), Err: err}
	if err != nil {
		return r
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	r.Latency = time.Since(start)
	r.Status = resp.StatusCode
	switch strings.ToLower(resp.Header.Get("X-Cacheportal-Cache")) {
	case "hit":
		r.CacheHit = true
	case "partial":
		r.CachePartial = true
	}
	return r
}

// Execer runs SQL (the database, a wire client, or a Site).
type Execer interface {
	Exec(sql string) error
}

// ExecFunc adapts a function to Execer.
type ExecFunc func(sql string) error

// Exec implements Execer.
func (f ExecFunc) Exec(sql string) error { return f(sql) }

// UpdateGen issues random updates at a fixed rate (§5.2.3: "generates
// random updates to the database over the network").
type UpdateGen struct {
	// Rate is mean statements per second.
	Rate float64
	// Statement produces the next SQL statement.
	Statement func(rng *rand.Rand) string
	// Target executes it.
	Target Execer

	rng *rand.Rand

	mu     sync.Mutex
	issued int64
	failed int64
}

// NewUpdateGen creates an update generator with a deterministic seed.
func NewUpdateGen(rate float64, seed int64, target Execer, stmt func(*rand.Rand) string) *UpdateGen {
	return &UpdateGen{Rate: rate, Statement: stmt, Target: target, rng: rand.New(rand.NewSource(seed))}
}

// Run issues updates for the duration, blocking until done. It returns
// (issued, failed).
func (g *UpdateGen) Run(d time.Duration) (int64, int64) {
	if g.Rate <= 0 {
		return 0, 0
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		sql := g.Statement(g.rng)
		err := g.Target.Exec(sql)
		g.mu.Lock()
		g.issued++
		if err != nil {
			g.failed++
		}
		g.mu.Unlock()
		time.Sleep(time.Duration(g.rng.ExpFloat64() * float64(time.Second) / g.Rate))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.issued, g.failed
}

// PaperUpdateStatement builds the paper's update mix for two tables: random
// insertions and deletions against each (§5.2.3).
func PaperUpdateStatement(small, large string) func(*rand.Rand) string {
	return func(rng *rand.Rand) string {
		table := small
		if rng.Intn(2) == 1 {
			table = large
		}
		join := rng.Intn(10) // the shared join attribute has 10 values
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, '%c')",
				table, rng.Intn(1_000_000), join, 'a'+rune(rng.Intn(26)))
		}
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, rng.Intn(1_000_000))
	}
}
