package mem

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sqlparser"
)

func carSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Car", []Column{
		{Name: "id", Type: sqlparser.TypeInt, PrimaryKey: true, NotNull: true},
		{Name: "maker", Type: sqlparser.TypeString, NotNull: true},
		{Name: "price", Type: sqlparser.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueSQL(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Str("it's"), "'it''s'"},
		{Int(7), "7"},
		{Float(3), "3.0"},
		{Float(2.5), "2.5"},
		{Bool(true), "TRUE"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestValueLiteralRoundtrip(t *testing.T) {
	vals := []Value{Null(), Int(-9), Float(1.25), Str("x"), Bool(false)}
	for _, v := range vals {
		back, err := FromLiteral(v.Literal())
		if err != nil {
			t.Fatalf("FromLiteral(%v.Literal()): %v", v, err)
		}
		if back != v {
			t.Errorf("roundtrip %v -> %v", v, back)
		}
	}
}

func TestFromLiteralNegative(t *testing.T) {
	e, err := sqlparser.ParseExpr("-(5)")
	if err != nil {
		t.Fatal(err)
	}
	// -(5) parses to UnaryExpr{-, Paren{5}} — not a plain literal.
	if _, err := FromLiteral(e); err == nil {
		t.Fatal("want error for non-literal")
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, err := Compare(Int(2), Float(2.0))
	if err != nil || c != 0 {
		t.Fatalf("Compare(2, 2.0) = %d, %v", c, err)
	}
	c, _ = Compare(Int(1), Float(1.5))
	if c != -1 {
		t.Fatalf("Compare(1, 1.5) = %d", c)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(Int(1), Str("1")); err == nil {
		t.Fatal("want error comparing int to string")
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Fatal("want error comparing NULL")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Fatal("NULL = NULL must be false")
	}
	if Equal(Null(), Int(0)) {
		t.Fatal("NULL = 0 must be false")
	}
	if !Equal(Int(3), Float(3)) {
		t.Fatal("3 = 3.0 must be true")
	}
}

func TestKeyNumericUnification(t *testing.T) {
	if Int(5).Key() != Float(5).Key() {
		t.Fatal("5 and 5.0 must share an index key")
	}
	if Int(5).Key() == Str("5").Key() {
		t.Fatal("int 5 and string '5' must not collide")
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := CoerceTo(Int(3), sqlparser.TypeFloat)
	if err != nil || v != Float(3) {
		t.Fatalf("int→float: %v, %v", v, err)
	}
	v, err = CoerceTo(Float(4.0), sqlparser.TypeInt)
	if err != nil || v != Int(4) {
		t.Fatalf("float→int: %v, %v", v, err)
	}
	if _, err := CoerceTo(Float(4.5), sqlparser.TypeInt); err == nil {
		t.Fatal("4.5→int must fail")
	}
	if _, err := CoerceTo(Str("x"), sqlparser.TypeInt); err == nil {
		t.Fatal("string→int must fail")
	}
	v, err = CoerceTo(Null(), sqlparser.TypeBool)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL passthrough: %v, %v", v, err)
	}
}

func TestParseAs(t *testing.T) {
	v, err := ParseAs("42", sqlparser.TypeInt)
	if err != nil || v != Int(42) {
		t.Fatalf("%v %v", v, err)
	}
	v, _ = ParseAs("2.5", sqlparser.TypeFloat)
	if v != Float(2.5) {
		t.Fatalf("%v", v)
	}
	v, _ = ParseAs("NULL", sqlparser.TypeString)
	if !v.IsNull() {
		t.Fatalf("%v", v)
	}
	v, _ = ParseAs("true", sqlparser.TypeBool)
	if v != Bool(true) {
		t.Fatalf("%v", v)
	}
	if _, err := ParseAs("zzz", sqlparser.TypeInt); err == nil {
		t.Fatal("want parse error")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", []Column{{Name: "a"}}); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := NewSchema("t", nil); err == nil {
		t.Fatal("no columns must fail")
	}
	if _, err := NewSchema("t", []Column{{Name: "a"}, {Name: "A"}}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	if _, err := NewSchema("t", []Column{{Name: "a", PrimaryKey: true}, {Name: "b", PrimaryKey: true}}); err == nil {
		t.Fatal("two primary keys must fail")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := carSchema(t)
	if s.ColumnIndex("MAKER") != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.ColumnIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	if s.PrimaryKey() != 0 {
		t.Fatal("pk should be column 0")
	}
	if got := s.ColumnNames(); !reflect.DeepEqual(got, []string{"id", "maker", "price"}) {
		t.Fatalf("names: %v", got)
	}
}

func TestTableInsertScan(t *testing.T) {
	tab := NewTable(carSchema(t))
	for i := 0; i < 5; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Str("m"), Float(float64(i) * 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 5 {
		t.Fatalf("len = %d", tab.Len())
	}
	rows := tab.Rows()
	for i, r := range rows {
		if r[0] != Int(int64(i)) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
}

func TestTableInsertValidation(t *testing.T) {
	tab := NewTable(carSchema(t))
	if _, err := tab.Insert(Row{Int(1), Str("a")}); err == nil {
		t.Fatal("short row must fail")
	}
	if _, err := tab.Insert(Row{Int(1), Null(), Float(1)}); err == nil {
		t.Fatal("NULL in NOT NULL must fail")
	}
	if _, err := tab.Insert(Row{Str("x"), Str("a"), Float(1)}); err == nil {
		t.Fatal("type mismatch must fail")
	}
	// Int accepted in float column.
	if _, err := tab.Insert(Row{Int(1), Str("a"), Int(7)}); err != nil {
		t.Fatal(err)
	}
	r := tab.Rows()[0]
	if r[2] != Float(7) {
		t.Fatalf("coercion: %v", r[2])
	}
}

func TestTablePrimaryKeyUnique(t *testing.T) {
	tab := NewTable(carSchema(t))
	if _, err := tab.Insert(Row{Int(1), Str("a"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Int(1), Str("b"), Float(2)}); err == nil {
		t.Fatal("duplicate pk must fail")
	}
}

func TestTableDelete(t *testing.T) {
	tab := NewTable(carSchema(t))
	var ids []int64
	for i := 0; i < 4; i++ {
		id, err := tab.Insert(Row{Int(int64(i)), Str("m"), Float(0)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	removed := tab.Delete(map[int64]bool{ids[1]: true, ids[3]: true, 999: true})
	if len(removed) != 2 {
		t.Fatalf("removed: %v", removed)
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	rows := tab.Rows()
	if rows[0][0] != Int(0) || rows[1][0] != Int(2) {
		t.Fatalf("survivors: %v", rows)
	}
	// pk index no longer holds deleted values.
	got, ok := tab.IndexLookup("id", Int(1))
	if !ok || len(got) != 0 {
		t.Fatalf("index still has deleted row: %v", got)
	}
	// reinsert previously deleted pk value now succeeds.
	if _, err := tab.Insert(Row{Int(1), Str("back"), Float(9)}); err != nil {
		t.Fatal(err)
	}
}

func TestTableReplace(t *testing.T) {
	tab := NewTable(carSchema(t))
	id, _ := tab.Insert(Row{Int(1), Str("a"), Float(1)})
	id2, _ := tab.Insert(Row{Int(2), Str("b"), Float(2)})
	nr, err := tab.ValidateRow(Row{Int(3), Str("a2"), Float(10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Replace(id, nr); err != nil {
		t.Fatal(err)
	}
	got, _ := tab.Get(id)
	if got[0] != Int(3) {
		t.Fatalf("row after replace: %v", got)
	}
	// index moved
	if ids, _ := tab.IndexLookup("id", Int(1)); len(ids) != 0 {
		t.Fatal("old key still indexed")
	}
	if ids, _ := tab.IndexLookup("id", Int(3)); len(ids) != 1 {
		t.Fatal("new key not indexed")
	}
	// replacing to a duplicate pk fails
	dup, _ := tab.ValidateRow(Row{Int(2), Str("x"), Float(0)})
	if err := tab.Replace(id, dup); err == nil {
		t.Fatal("duplicate pk via replace must fail")
	}
	_ = id2
	if err := tab.Replace(12345, nr); err == nil {
		t.Fatal("replace of unknown id must fail")
	}
}

func TestCreateIndexBackfillAndUniqueViolation(t *testing.T) {
	tab := NewTable(carSchema(t))
	tab.Insert(Row{Int(1), Str("toyota"), Float(1)})
	tab.Insert(Row{Int(2), Str("honda"), Float(2)})
	tab.Insert(Row{Int(3), Str("toyota"), Float(3)})
	if err := tab.CreateIndex("maker", false); err != nil {
		t.Fatal(err)
	}
	ids, ok := tab.IndexLookup("maker", Str("toyota"))
	if !ok || len(ids) != 2 {
		t.Fatalf("lookup: %v %v", ids, ok)
	}
	if err := tab.CreateIndex("maker", false); err == nil {
		t.Fatal("duplicate index must fail")
	}
	if err := tab.CreateIndex("price", true); err != nil {
		t.Fatal(err) // prices unique so far
	}
	if err := tab.CreateIndex("nope", false); err == nil {
		t.Fatal("index on missing column must fail")
	}
	tab2 := NewTable(carSchema(t))
	tab2.Insert(Row{Int(1), Str("a"), Float(1)})
	tab2.Insert(Row{Int(2), Str("a"), Float(2)})
	if err := tab2.CreateIndex("maker", true); err == nil {
		t.Fatal("unique index over duplicates must fail")
	}
}

func TestIndexNullHandling(t *testing.T) {
	s, _ := NewSchema("t", []Column{
		{Name: "a", Type: sqlparser.TypeInt},
		{Name: "b", Type: sqlparser.TypeString},
	})
	tab := NewTable(s)
	if err := tab.CreateIndex("a", true); err != nil {
		t.Fatal(err)
	}
	// Multiple NULLs allowed under a unique index.
	if _, err := tab.Insert(Row{Null(), Str("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Null(), Str("y")}); err != nil {
		t.Fatal(err)
	}
	ids, _ := tab.IndexLookup("a", Null())
	if len(ids) != 0 {
		t.Fatal("NULL lookup must return nothing")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tab := NewTable(carSchema(t))
	for i := 0; i < 10; i++ {
		tab.Insert(Row{Int(int64(i)), Str("m"), Float(0)})
	}
	n := 0
	tab.Scan(func(_ int64, _ Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scanned %d", n)
	}
}

func TestRowCloneAndKey(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0] != Int(1) {
		t.Fatal("clone aliases original")
	}
	if (Row{Int(1), Str("a")}).Key() != r.Key() {
		t.Fatal("equal rows must share keys")
	}
	if (Row{Int(1), Str("b")}).Key() == r.Key() {
		t.Fatal("different rows must differ")
	}
}

// Property: for random insert/delete sequences, every index lookup agrees
// with a full scan.
func TestQuickIndexMatchesScan(t *testing.T) {
	type op struct {
		insert bool
		val    int64
	}
	r := rand.New(rand.NewSource(7))
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			n := 1 + r.Intn(40)
			ops := make([]op, n)
			for i := range ops {
				ops[i] = op{insert: r.Intn(3) > 0, val: int64(r.Intn(10))}
			}
			vals[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []op) bool {
		s, _ := NewSchema("t", []Column{{Name: "v", Type: sqlparser.TypeInt}})
		tab := NewTable(s)
		if err := tab.CreateIndex("v", false); err != nil {
			return false
		}
		for _, o := range ops {
			if o.insert {
				if _, err := tab.Insert(Row{Int(o.val)}); err != nil {
					return false
				}
			} else {
				// Delete all rows with value o.val, found by scan.
				ids := map[int64]bool{}
				tab.Scan(func(id int64, row Row) bool {
					if Equal(row[0], Int(o.val)) {
						ids[id] = true
					}
					return true
				})
				tab.Delete(ids)
			}
		}
		// Compare index and scan for every value 0..9.
		for v := int64(0); v < 10; v++ {
			fromIdx, ok := tab.IndexLookup("v", Int(v))
			if !ok {
				return false
			}
			count := 0
			tab.Scan(func(_ int64, row Row) bool {
				if Equal(row[0], Int(v)) {
					count++
				}
				return true
			})
			if len(fromIdx) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and transitive-ish on random numeric
// values, and Key equality coincides with Compare == 0.
func TestQuickCompareConsistency(t *testing.T) {
	prop := func(a, b int64, fa, fb float64) bool {
		va, vb := Int(a), Float(fb)
		_ = fa
		c1, err1 := Compare(va, vb)
		c2, err2 := Compare(vb, va)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		if (c1 == 0) != (va.Key() == vb.Key()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
