package mem

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqlparser"
)

func orderedTestTable(t *testing.T, typ sqlparser.ColumnType) *Table {
	t.Helper()
	s, err := NewSchema("t", []Column{{Name: "v", Type: typ}})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(s)
	if err := tab.CreateOrderedIndex("v"); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestOrderedIndexBasicRanges(t *testing.T) {
	tab := orderedTestTable(t, sqlparser.TypeInt)
	for _, v := range []int64{5, 1, 9, 3, 7, 3} {
		if _, err := tab.Insert(Row{Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		min, max         Value
		minIncl, maxIncl bool
		want             []int64 // expected row values, insertion order
	}{
		{Null(), Int(5), false, false, []int64{1, 3, 3}},      // v < 5
		{Null(), Int(5), false, true, []int64{5, 1, 3, 3}},    // v <= 5
		{Int(3), Null(), false, false, []int64{5, 9, 7}},      // v > 3
		{Int(3), Null(), true, false, []int64{5, 9, 3, 7, 3}}, // v >= 3
		{Int(10), Null(), false, false, nil},                  // v > 10
	}
	for i, c := range cases {
		ids, ok := tab.OrderedRange("v", c.min, c.max, c.minIncl, c.maxIncl)
		if !ok {
			t.Fatalf("case %d: index declined", i)
		}
		var got []int64
		for _, id := range ids {
			r, _ := tab.Get(id)
			got = append(got, r[0].I)
		}
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestOrderedIndexNaNFallback(t *testing.T) {
	tab := orderedTestTable(t, sqlparser.TypeFloat)
	if _, err := tab.Insert(Row{Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	nanID, err := tab.Insert(Row{Float(math.NaN())})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.OrderedRange("v", Null(), Float(2), false, false); ok {
		t.Fatal("index answered a range with a NaN stored — mem.Compare makes NaN match <=/>= anything, so it must decline")
	}
	tab.Delete(map[int64]bool{nanID: true})
	ids, ok := tab.OrderedRange("v", Null(), Float(2), false, false)
	if !ok || len(ids) != 1 {
		t.Fatalf("after NaN delete: ok=%v ids=%v", ok, ids)
	}
	// A NaN probe value is equally unanswerable.
	if _, ok := tab.OrderedRange("v", Float(math.NaN()), Null(), true, false); ok {
		t.Fatal("index answered a NaN-bounded range")
	}
}

// TestOrderedIndexRandomized drives the two-level structure through enough
// inserts, deletes, and replaces to force merges and compactions, checking
// every range answer against a naive scan using mem.Compare — the same
// semantics the query layer's scan path applies.
func TestOrderedIndexRandomized(t *testing.T) {
	for _, typ := range []sqlparser.ColumnType{sqlparser.TypeInt, sqlparser.TypeFloat, sqlparser.TypeString} {
		t.Run(typ.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			tab := orderedTestTable(t, typ)
			randVal := func() Value {
				switch typ {
				case sqlparser.TypeInt:
					return Int(int64(rng.Intn(200) - 100))
				case sqlparser.TypeFloat:
					return Float(float64(rng.Intn(400)-200) / 4)
				default:
					return Str(string(rune('a' + rng.Intn(26))))
				}
			}
			var live []int64
			for op := 0; op < 4000; op++ {
				switch r := rng.Intn(10); {
				case r < 6 || len(live) == 0: // insert
					v := randVal()
					if rng.Intn(20) == 0 {
						v = Null()
					}
					id, err := tab.Insert(Row{v})
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case r < 8: // delete
					i := rng.Intn(len(live))
					tab.Delete(map[int64]bool{live[i]: true})
					live = append(live[:i], live[i+1:]...)
				default: // replace
					id := live[rng.Intn(len(live))]
					if err := tab.Replace(id, Row{randVal()}); err != nil {
						t.Fatal(err)
					}
				}
				if op%97 != 0 {
					continue
				}
				lo, hi := randVal(), randVal()
				if rng.Intn(4) == 0 {
					lo = Null()
				}
				if rng.Intn(4) == 0 {
					hi = Null()
				}
				minIncl, maxIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
				ids, ok := tab.OrderedRange("v", lo, hi, minIncl, maxIncl)
				if !ok {
					t.Fatalf("op %d: index declined with no NaN stored", op)
				}
				want := naiveRange(tab, lo, hi, minIncl, maxIncl)
				if len(ids) != len(want) {
					t.Fatalf("op %d: got %d ids, want %d (range %v..%v incl %v/%v)",
						op, len(ids), len(want), lo, hi, minIncl, maxIncl)
				}
				for i := range ids {
					if ids[i] != want[i] {
						t.Fatalf("op %d: ids %v != want %v", op, ids, want)
					}
				}
			}
		})
	}
}

// naiveRange is the reference: a full scan applying mem.Compare exactly as
// the query layer's predicate evaluation would.
func naiveRange(tab *Table, lo, hi Value, minIncl, maxIncl bool) []int64 {
	var out []int64
	tab.Scan(func(id int64, r Row) bool {
		v := r[0]
		if v.IsNull() {
			return true
		}
		if !lo.IsNull() {
			c, err := Compare(v, lo)
			if err != nil || c < 0 || (!minIncl && c == 0) {
				return true
			}
		}
		if !hi.IsNull() {
			c, err := Compare(v, hi)
			if err != nil || c > 0 || (!maxIncl && c == 0) {
				return true
			}
		}
		out = append(out, id)
		return true
	})
	return out
}
