package mem

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OrderedIndex is a sorted index over one column, answering range probes
// (<, <=, >, >=) in O(log n + matches). Like HashIndex it is maintained on
// every Insert/Delete/Replace, but its write path is two-level so inserts
// stay cheap: new entries land in an unsorted pending buffer and are merged
// into the sorted main run when the buffer fills. Lookups consult both.
//
// Keys order the same way mem.Compare does — numerics inter-comparable,
// strings by byte order, bools false<true — and families never compare
// across (the query layer guards probes by the column's declared type, so a
// probe only ever meets keys of its own family). NULLs are not indexed
// (range predicates never match NULL) and NaN floats are counted but not
// indexed: mem.Compare treats NaN as equal to everything, an ordering no
// sorted structure can honor, so while any NaN is present the index
// declines to answer and the caller falls back to scanning.
type OrderedIndex struct {
	Col     int // column position in the schema
	main    []orderedEntry
	pending []pendingEntry
	dead    int // main entries whose id lists emptied since the last merge
	nan     int // NaN values currently stored in the column
}

// pendingMax bounds the unsorted buffer; at the bound a merge folds it into
// the main run, keeping lookups' linear component constant.
const pendingMax = 512

type orderedEntry struct {
	key orderedKey
	ids []int64
}

type pendingEntry struct {
	key orderedKey
	id  int64
}

// orderedKey is a comparable projection of a Value. fam ranks families
// (numeric < string < bool) so mixed-family columns still have a total
// order, though guarded probes never cross families.
type orderedKey struct {
	fam byte
	f   float64 // numeric value; 0/1 for bool
	s   string
}

const (
	famNumeric = iota
	famString
	famBool
)

// orderedKeyFor projects v, reporting ok=false for values the index cannot
// order (NULL, NaN).
func orderedKeyFor(v Value) (orderedKey, bool) {
	switch v.Kind {
	case KindInt:
		return orderedKey{fam: famNumeric, f: float64(v.I)}, true
	case KindFloat:
		if math.IsNaN(v.F) {
			return orderedKey{}, false
		}
		return orderedKey{fam: famNumeric, f: v.F}, true
	case KindString:
		return orderedKey{fam: famString, s: v.S}, true
	case KindBool:
		k := orderedKey{fam: famBool}
		if v.B {
			k.f = 1
		}
		return k, true
	default:
		return orderedKey{}, false
	}
}

func (a orderedKey) less(b orderedKey) bool {
	if a.fam != b.fam {
		return a.fam < b.fam
	}
	if a.fam == famString {
		return a.s < b.s
	}
	return a.f < b.f
}

// NewOrderedIndex creates an empty index over column position col.
func NewOrderedIndex(col int) *OrderedIndex {
	return &OrderedIndex{Col: col}
}

// Add indexes row id under value v.
func (x *OrderedIndex) Add(v Value, id int64) {
	if v.IsNull() {
		return
	}
	key, ok := orderedKeyFor(v)
	if !ok {
		x.nan++
		return
	}
	x.pending = append(x.pending, pendingEntry{key: key, id: id})
	if len(x.pending) >= pendingMax {
		x.merge()
	}
}

// Remove drops row id from the entry for v.
func (x *OrderedIndex) Remove(v Value, id int64) {
	if v.IsNull() {
		return
	}
	key, ok := orderedKeyFor(v)
	if !ok {
		if x.nan > 0 {
			x.nan--
		}
		return
	}
	for i := len(x.pending) - 1; i >= 0; i-- {
		p := x.pending[i]
		if p.id == id && p.key == key {
			x.pending[i] = x.pending[len(x.pending)-1]
			x.pending = x.pending[:len(x.pending)-1]
			return
		}
	}
	i := sort.Search(len(x.main), func(i int) bool { return !x.main[i].key.less(key) })
	if i >= len(x.main) || x.main[i].key != key {
		return
	}
	ids := x.main[i].ids
	for j, got := range ids {
		if got == id {
			ids[j] = ids[len(ids)-1]
			x.main[i].ids = ids[:len(ids)-1]
			break
		}
	}
	if len(x.main[i].ids) == 0 {
		x.dead++
		if x.dead*2 > len(x.main) {
			x.compact()
		}
	}
}

// merge sorts the pending buffer and folds it into the main run, dropping
// dead entries along the way.
func (x *OrderedIndex) merge() {
	if len(x.pending) == 0 {
		return
	}
	sort.Slice(x.pending, func(i, j int) bool { return x.pending[i].key.less(x.pending[j].key) })
	out := make([]orderedEntry, 0, len(x.main)+len(x.pending)-x.dead)
	mi, pi := 0, 0
	for mi < len(x.main) || pi < len(x.pending) {
		switch {
		case mi < len(x.main) && len(x.main[mi].ids) == 0:
			mi++
		case pi >= len(x.pending) || (mi < len(x.main) && x.main[mi].key.less(x.pending[pi].key)):
			out = append(out, x.main[mi])
			mi++
		case mi < len(x.main) && x.main[mi].key == x.pending[pi].key:
			e := x.main[mi]
			for pi < len(x.pending) && x.pending[pi].key == e.key {
				e.ids = append(e.ids, x.pending[pi].id)
				pi++
			}
			out = append(out, e)
			mi++
		default:
			// A run of pending entries ahead of (or past) the main run;
			// coalesce equal keys.
			e := orderedEntry{key: x.pending[pi].key, ids: []int64{x.pending[pi].id}}
			pi++
			for pi < len(x.pending) && x.pending[pi].key == e.key {
				e.ids = append(e.ids, x.pending[pi].id)
				pi++
			}
			out = append(out, e)
		}
	}
	x.main = out
	x.pending = x.pending[:0]
	x.dead = 0
}

// compact drops dead entries from the main run.
func (x *OrderedIndex) compact() {
	kept := x.main[:0]
	for _, e := range x.main {
		if len(e.ids) > 0 {
			kept = append(kept, e)
		}
	}
	x.main = kept
	x.dead = 0
}

// Range returns the IDs of rows whose column value lies between min and max
// (NULL bound = unbounded on that side), plus ok=false when the index
// cannot answer exactly — a NaN is stored in the column, or a bound is a
// value the key space cannot order (NaN). IDs are returned in ascending
// order, which for this storage layer is insertion order.
func (x *OrderedIndex) Range(min, max Value, minIncl, maxIncl bool) ([]int64, bool) {
	if x.nan > 0 {
		return nil, false
	}
	var lo, hi *orderedKey
	if !min.IsNull() {
		k, ok := orderedKeyFor(min)
		if !ok {
			return nil, false
		}
		lo = &k
	}
	if !max.IsNull() {
		k, ok := orderedKeyFor(max)
		if !ok {
			return nil, false
		}
		hi = &k
	}
	within := func(k orderedKey) bool {
		if lo != nil {
			if k.less(*lo) || (!minIncl && k == *lo) {
				return false
			}
		}
		if hi != nil {
			if hi.less(k) || (!maxIncl && k == *hi) {
				return false
			}
		}
		return true
	}
	var ids []int64
	start := 0
	if lo != nil {
		start = sort.Search(len(x.main), func(i int) bool { return !x.main[i].key.less(*lo) })
	}
	for i := start; i < len(x.main); i++ {
		e := x.main[i]
		if hi != nil && hi.less(e.key) {
			break
		}
		if within(e.key) {
			ids = append(ids, e.ids...)
		}
	}
	for _, p := range x.pending {
		if within(p.key) {
			ids = append(ids, p.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// Len returns the number of indexed (orderable) values.
func (x *OrderedIndex) Len() int {
	n := len(x.pending)
	for _, e := range x.main {
		n += len(e.ids)
	}
	return n
}

// CreateOrderedIndex adds an ordered index on the named column, backfilling
// existing rows. Creating one that exists is an error; probe with
// HasOrderedIndex.
func (t *Table) CreateOrderedIndex(column string) error {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("mem: table %s: no column %s", t.Schema.Table, column)
	}
	key := strings.ToLower(column)
	if _, exists := t.ordered[key]; exists {
		return fmt.Errorf("mem: table %s: ordered index on %s already exists", t.Schema.Table, column)
	}
	idx := NewOrderedIndex(ci)
	for _, id := range t.rowIDs {
		idx.Add(t.rows[id][ci], id)
	}
	if t.ordered == nil {
		t.ordered = make(map[string]*OrderedIndex)
	}
	t.ordered[key] = idx
	return nil
}

// HasOrderedIndex reports whether an ordered index exists on the named
// column.
func (t *Table) HasOrderedIndex(column string) bool {
	_, ok := t.ordered[strings.ToLower(column)]
	return ok
}

// OrderedRange returns the IDs of rows whose value in the named column lies
// within the bounds (NULL bound = unbounded), in insertion order. ok=false
// when no ordered index covers the column or the index cannot answer
// exactly; the caller must fall back to scanning.
func (t *Table) OrderedRange(column string, min, max Value, minIncl, maxIncl bool) ([]int64, bool) {
	idx, ok := t.ordered[strings.ToLower(column)]
	if !ok {
		return nil, false
	}
	return idx.Range(min, max, minIncl, maxIncl)
}
