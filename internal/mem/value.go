// Package mem implements the in-memory storage layer of the reproduction's
// relational engine: typed values, schemas, tables with insertion-ordered
// rows, and hash indexes. It is the substrate standing in for the paper's
// Oracle 8i storage (see DESIGN.md §2); the query processor lives in
// internal/engine.
package mem

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlparser"
)

// Kind tags a Value.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String names the value kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Kind: KindBool, B: v} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for display and for wire encoding.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("<bad value kind %d>", v.Kind)
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.Kind {
	case KindString:
		return sqlparser.QuoteString(v.S)
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// Literal converts the value to the corresponding sqlparser literal
// expression; NULL becomes *sqlparser.NullLit.
func (v Value) Literal() sqlparser.Expr {
	switch v.Kind {
	case KindNull:
		return &sqlparser.NullLit{}
	case KindInt:
		return &sqlparser.IntLit{Value: v.I}
	case KindFloat:
		return &sqlparser.FloatLit{Value: v.F}
	case KindString:
		return &sqlparser.StringLit{Value: v.S}
	case KindBool:
		return &sqlparser.BoolLit{Value: v.B}
	default:
		return &sqlparser.NullLit{}
	}
}

// FromLiteral converts a literal expression to a Value. It returns an error
// for non-literal expressions.
func FromLiteral(e sqlparser.Expr) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.IntLit:
		return Int(x.Value), nil
	case *sqlparser.FloatLit:
		return Float(x.Value), nil
	case *sqlparser.StringLit:
		return Str(x.Value), nil
	case *sqlparser.BoolLit:
		return Bool(x.Value), nil
	case *sqlparser.NullLit:
		return Null(), nil
	case *sqlparser.UnaryExpr:
		if x.Op == "-" {
			v, err := FromLiteral(x.X)
			if err != nil {
				return Null(), err
			}
			switch v.Kind {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			}
		}
	}
	return Null(), fmt.Errorf("mem: expression %s is not a literal", e)
}

// Key returns a canonical encoding suitable as a hash-index or group-by key.
// Numerically equal ints and floats produce the same key.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "n"
	case KindInt:
		return "f" + strconv.FormatFloat(float64(v.I), 'g', -1, 64)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + v.S
	case KindBool:
		if v.B {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}

// numeric returns the value as float64 when it is numeric.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Compare orders two non-NULL values, coercing between int and float.
// It returns an error for incomparable kinds. Callers must handle NULL
// before calling (SQL three-valued logic).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("mem: cannot compare NULL values")
	}
	if af, ok := a.numeric(); ok {
		if bf, ok := b.numeric(); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S), nil
	}
	if a.Kind == KindBool && b.Kind == KindBool {
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("mem: cannot compare %s with %s", a.Kind, b.Kind)
}

// Equal reports whether two values are equal under SQL semantics, with NULL
// equal to nothing (including NULL). Use Key() equality for grouping, where
// NULLs group together.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// CoerceTo converts v to column type t where a lossless or conventional
// conversion exists (int→float, float with integral value→int, string
// parsing is NOT attempted). NULL passes through.
func CoerceTo(v Value, t sqlparser.ColumnType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case sqlparser.TypeInt:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				return Int(int64(v.F)), nil
			}
			return Null(), fmt.Errorf("mem: cannot store non-integral %g in INT column", v.F)
		}
	case sqlparser.TypeFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return Float(float64(v.I)), nil
		}
	case sqlparser.TypeString:
		if v.Kind == KindString {
			return v, nil
		}
	case sqlparser.TypeBool:
		if v.Kind == KindBool {
			return v, nil
		}
	}
	return Null(), fmt.Errorf("mem: cannot store %s value in %s column", v.Kind, t)
}

// ParseAs parses the string form produced by Value.String back into a value
// of the given column type; used by the wire protocol decoder.
func ParseAs(s string, t sqlparser.ColumnType) (Value, error) {
	if s == "NULL" {
		return Null(), nil
	}
	switch t {
	case sqlparser.TypeInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("mem: bad int %q: %v", s, err)
		}
		return Int(n), nil
	case sqlparser.TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("mem: bad float %q: %v", s, err)
		}
		return Float(f), nil
	case sqlparser.TypeBool:
		switch s {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Null(), fmt.Errorf("mem: bad bool %q", s)
	default:
		return Str(s), nil
	}
}
