package mem

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       sqlparser.ColumnType
	NotNull    bool
	PrimaryKey bool
}

// Schema is an ordered list of columns plus name-resolution helpers. Column
// names are case-insensitive.
type Schema struct {
	Table   string
	Columns []Column
	byName  map[string]int
	pk      int // index of primary key column, -1 if none
}

// NewSchema builds a schema, validating column-name uniqueness and that at
// most one primary key is declared.
func NewSchema(table string, cols []Column) (*Schema, error) {
	if table == "" {
		return nil, fmt.Errorf("mem: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("mem: table %s has no columns", table)
	}
	s := &Schema{Table: table, Columns: cols, byName: make(map[string]int, len(cols)), pk: -1}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("mem: table %s: duplicate column %s", table, c.Name)
		}
		s.byName[key] = i
		if c.PrimaryKey {
			if s.pk >= 0 {
				return nil, fmt.Errorf("mem: table %s: multiple primary keys", table)
			}
			s.pk = i
		}
	}
	return s, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// PrimaryKey returns the index of the primary key column, or -1.
func (s *Schema) PrimaryKey() int { return s.pk }

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Row is one tuple; len(Row) == len(Schema.Columns).
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key renders the row as a composite hash key.
func (r Row) Key() string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Table is an insertion-ordered heap of rows with optional hash indexes.
// Table methods are not synchronized; the owning Database serializes access.
type Table struct {
	Schema  *Schema
	rowIDs  []int64
	rows    map[int64]Row
	indexes map[string]*HashIndex    // lower-cased column name → index
	ordered map[string]*OrderedIndex // lower-cased column name → ordered index
	nextID  int64
}

// NewTable creates an empty table. A hash index is created automatically on
// the primary key column, if any.
func NewTable(schema *Schema) *Table {
	t := &Table{
		Schema:  schema,
		rows:    make(map[int64]Row),
		indexes: make(map[string]*HashIndex),
	}
	if pk := schema.PrimaryKey(); pk >= 0 {
		t.indexes[strings.ToLower(schema.Columns[pk].Name)] = NewHashIndex(pk, true)
	}
	return t
}

// Len returns the number of live rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert validates, coerces and appends a row, returning its row ID.
func (t *Table) Insert(r Row) (int64, error) {
	if len(r) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("mem: table %s: row has %d values, want %d",
			t.Schema.Table, len(r), len(t.Schema.Columns))
	}
	coerced := make(Row, len(r))
	for i, v := range r {
		col := t.Schema.Columns[i]
		if v.IsNull() && col.NotNull {
			return 0, fmt.Errorf("mem: table %s: column %s is NOT NULL", t.Schema.Table, col.Name)
		}
		cv, err := CoerceTo(v, col.Type)
		if err != nil {
			return 0, fmt.Errorf("mem: table %s column %s: %w", t.Schema.Table, col.Name, err)
		}
		coerced[i] = cv
	}
	// Unique index checks before any mutation.
	for name, idx := range t.indexes {
		if idx.Unique {
			if ids := idx.Lookup(coerced[idx.Col]); len(ids) > 0 {
				return 0, fmt.Errorf("mem: table %s: duplicate value %s for unique column %s",
					t.Schema.Table, coerced[idx.Col], name)
			}
		}
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = coerced
	t.rowIDs = append(t.rowIDs, id)
	for _, idx := range t.indexes {
		idx.Add(coerced[idx.Col], id)
	}
	for _, idx := range t.ordered {
		idx.Add(coerced[idx.Col], id)
	}
	return id, nil
}

// Get returns the row with the given ID.
func (t *Table) Get(id int64) (Row, bool) {
	r, ok := t.rows[id]
	return r, ok
}

// Delete removes the rows with the given IDs; unknown IDs are ignored.
// It returns the rows actually removed, in insertion order.
func (t *Table) Delete(ids map[int64]bool) []Row {
	if len(ids) == 0 {
		return nil
	}
	var removed []Row
	kept := t.rowIDs[:0]
	for _, id := range t.rowIDs {
		if ids[id] {
			if r, ok := t.rows[id]; ok {
				removed = append(removed, r)
				for _, idx := range t.indexes {
					idx.Remove(r[idx.Col], id)
				}
				for _, idx := range t.ordered {
					idx.Remove(r[idx.Col], id)
				}
				delete(t.rows, id)
			}
			continue
		}
		kept = append(kept, id)
	}
	t.rowIDs = kept
	return removed
}

// Replace overwrites the row with the given ID (used by UPDATE). The new
// row must already be validated/coerced by the caller via ValidateRow.
func (t *Table) Replace(id int64, r Row) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("mem: table %s: no row %d", t.Schema.Table, id)
	}
	for _, idx := range t.indexes {
		if idx.Unique && !Equal(old[idx.Col], r[idx.Col]) && !(old[idx.Col].IsNull() && r[idx.Col].IsNull()) {
			if ids := idx.Lookup(r[idx.Col]); len(ids) > 0 {
				return fmt.Errorf("mem: table %s: duplicate value %s for unique column %s",
					t.Schema.Table, r[idx.Col], t.Schema.Columns[idx.Col].Name)
			}
		}
	}
	for _, idx := range t.indexes {
		idx.Remove(old[idx.Col], id)
		idx.Add(r[idx.Col], id)
	}
	for _, idx := range t.ordered {
		idx.Remove(old[idx.Col], id)
		idx.Add(r[idx.Col], id)
	}
	t.rows[id] = r
	return nil
}

// ValidateRow coerces every value of r to the schema's column types,
// enforcing NOT NULL; it returns the coerced copy.
func (t *Table) ValidateRow(r Row) (Row, error) {
	if len(r) != len(t.Schema.Columns) {
		return nil, fmt.Errorf("mem: table %s: row has %d values, want %d",
			t.Schema.Table, len(r), len(t.Schema.Columns))
	}
	out := make(Row, len(r))
	for i, v := range r {
		col := t.Schema.Columns[i]
		if v.IsNull() && col.NotNull {
			return nil, fmt.Errorf("mem: table %s: column %s is NOT NULL", t.Schema.Table, col.Name)
		}
		cv, err := CoerceTo(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("mem: table %s column %s: %w", t.Schema.Table, col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// Scan calls fn for every live row in insertion order until fn returns
// false.
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	for _, id := range t.rowIDs {
		if r, ok := t.rows[id]; ok {
			if !fn(id, r) {
				return
			}
		}
	}
}

// Rows returns a snapshot of all rows in insertion order.
func (t *Table) Rows() []Row {
	out := make([]Row, 0, len(t.rowIDs))
	t.Scan(func(_ int64, r Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// CreateIndex adds a hash index on the named column, backfilling existing
// rows. Creating an index that exists is an error; use HasIndex to probe.
func (t *Table) CreateIndex(column string, unique bool) error {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("mem: table %s: no column %s", t.Schema.Table, column)
	}
	key := strings.ToLower(column)
	if _, exists := t.indexes[key]; exists {
		return fmt.Errorf("mem: table %s: index on %s already exists", t.Schema.Table, column)
	}
	idx := NewHashIndex(ci, unique)
	for _, id := range t.rowIDs {
		r := t.rows[id]
		if unique {
			if ids := idx.Lookup(r[ci]); len(ids) > 0 {
				return fmt.Errorf("mem: table %s: existing duplicate value %s prevents unique index on %s",
					t.Schema.Table, r[ci], column)
			}
		}
		idx.Add(r[ci], id)
	}
	t.indexes[key] = idx
	return nil
}

// HasIndex reports whether an index exists on the named column.
func (t *Table) HasIndex(column string) bool {
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// IndexLookup returns the IDs of rows whose indexed column equals v, or
// (nil, false) when the column is not indexed.
func (t *Table) IndexLookup(column string, v Value) ([]int64, bool) {
	idx, ok := t.indexes[strings.ToLower(column)]
	if !ok {
		return nil, false
	}
	return idx.Lookup(v), true
}

// HashIndex is an equality index from column value to row IDs.
type HashIndex struct {
	Col    int // column position in the schema
	Unique bool
	m      map[string][]int64
}

// NewHashIndex creates an empty index over column position col.
func NewHashIndex(col int, unique bool) *HashIndex {
	return &HashIndex{Col: col, Unique: unique, m: make(map[string][]int64)}
}

// Add indexes row id under value v. NULLs are not indexed (SQL unique
// semantics: multiple NULLs allowed, equality never matches NULL).
func (x *HashIndex) Add(v Value, id int64) {
	if v.IsNull() {
		return
	}
	k := v.Key()
	x.m[k] = append(x.m[k], id)
}

// Remove drops row id from the entry for v.
func (x *HashIndex) Remove(v Value, id int64) {
	if v.IsNull() {
		return
	}
	k := v.Key()
	ids := x.m[k]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(x.m, k)
	} else {
		x.m[k] = ids
	}
}

// Lookup returns the row IDs stored under v. Looking up NULL returns nil.
func (x *HashIndex) Lookup(v Value) []int64 {
	if v.IsNull() {
		return nil
	}
	return x.m[v.Key()]
}
