package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// memStatsTTL bounds how often the runtime gauges stop the world for
// runtime.ReadMemStats: all heap/GC gauges in one snapshot share a single
// read, and successive snapshots within the TTL reuse it.
const memStatsTTL = 250 * time.Millisecond

type memStatsCache struct {
	mu sync.Mutex
	at time.Time
	m  runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > memStatsTTL {
		runtime.ReadMemStats(&c.m)
		c.at = time.Now()
	}
	return c.m
}

// RuntimeMetrics registers process-level pull gauges — the daemons call it
// once next to their other wiring so every /debug/metrics document answers
// "is this process itself healthy" alongside the pipeline metrics:
//
//	runtime.goroutines        current goroutine count
//	runtime.heap_inuse_bytes  bytes in in-use heap spans
//	runtime.gc_total          completed GC cycles
//	runtime.gc_pause_p99_ns   p99 of the runtime's recent GC pause ring
//
// Idempotent per registry (components and daemons may both call it on a
// shared registry without tripping the duplicate-registration panic).
func (r *Registry) RuntimeMetrics() {
	r.mu.Lock()
	if r.runtimeOn {
		r.mu.Unlock()
		return
	}
	r.runtimeOn = true
	r.mu.Unlock()

	cache := &memStatsCache{}
	r.GaugeFunc("runtime.goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime.heap_inuse_bytes", func() int64 {
		m := cache.read()
		return int64(m.HeapInuse)
	})
	r.GaugeFunc("runtime.gc_total", func() int64 {
		m := cache.read()
		return int64(m.NumGC)
	})
	r.GaugeFunc("runtime.gc_pause_p99_ns", func() int64 {
		m := cache.read()
		n := int(m.NumGC)
		if n == 0 {
			return 0
		}
		if n > len(m.PauseNs) {
			n = len(m.PauseNs)
		}
		pauses := make([]uint64, n)
		for i := 0; i < n; i++ {
			// PauseNs is a circular buffer; the most recent pause is at
			// (NumGC+255)%256, walking backwards from there.
			pauses[i] = m.PauseNs[(int(m.NumGC)-1-i+2*len(m.PauseNs))%len(m.PauseNs)]
		}
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		idx := (99*n + 99) / 100 // ceil(0.99*n)
		if idx > n {
			idx = n
		}
		return int64(pauses[idx-1])
	})
}
