// Package obs is CachePortal's dependency-free observability core: a
// metrics registry of atomic counters, gauges, and fixed-bucket latency
// histograms, with JSON snapshot export. Every pipeline stage — sniffer,
// invalidator, pollers, web cache, ejectors — records into a Registry, and
// the daemons expose it over HTTP (/debug/metrics, /debug/vars; see
// handler.go).
//
// The paper's freshness/performance trade is only as good as its staleness
// window, so the registry's histograms are built to measure exactly that:
// the invalidator stamps every update-log record at ingestion, propagates
// the stamp through delta analysis and polling, and records the
// commit-to-eject latency here (metric "invalidator.staleness_seconds",
// plus one histogram per servlet).
//
// Hot-path cost: recording is one or two uncontended atomic adds; metric
// handles are resolved once (a mutex-guarded map lookup) and cached by the
// instrumented component, never per operation.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; use a Gauge for those).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Observe is
// lock-free: a binary search over the (immutable) bounds plus two atomic
// adds.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count     atomic.Int64
	sum       atomic.Uint64                 // float64 bits, CAS-updated
	max       atomic.Uint64                 // float64 bits
	exemplars []atomic.Pointer[exemplarRec] // len(bounds)+1, parallel to counts
}

// exemplarRec is one bucket's remembered worst observation with its trace.
type exemplarRec struct {
	v     float64
	trace int64
	at    time.Time
}

// ExemplarTTL is how long a bucket exemplar dominates smaller observations
// before a fresher (even if smaller) traced observation may replace it —
// "worst recent", not "worst ever".
var ExemplarTTL = time.Minute

// LatencyBuckets are the default bounds, in seconds: 100µs to 10s,
// roughly logarithmic. They cover everything from a shard-lock hold to a
// stalled invalidation cycle.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets builds n bounds starting at start, each factor× the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplarRec], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound >= v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records v and, when trace is nonzero, offers it as the
// bucket's exemplar: each bucket keeps the trace ID of its worst recent
// observation, so a fat histogram tail in /debug/metrics links directly to
// a replayable causal chain in /debug/trace. A stored exemplar is replaced
// by an equal-or-larger value, or by any traced value once it is older
// than ExemplarTTL. trace==0 degrades to plain Observe.
func (h *Histogram) ObserveExemplar(v float64, trace int64) {
	h.Observe(v)
	if trace == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	now := time.Now()
	rec := &exemplarRec{v: v, trace: trace, at: now}
	for {
		old := h.exemplars[i].Load()
		if old != nil && v < old.v && now.Sub(old.at) < ExemplarTTL {
			return
		}
		if h.exemplars[i].CompareAndSwap(old, rec) {
			return
		}
	}
}

// ObserveDurationExemplar is ObserveExemplar for a duration in seconds.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, trace int64) {
	h.ObserveExemplar(d.Seconds(), trace)
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Concurrent observers may
// land between the per-bucket loads; the snapshot is consistent enough for
// reporting (counts never decrease).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Max:    math.Float64frombits(h.max.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, Exemplar{
				Bucket: i, Value: e.v, Trace: e.trace, At: e.at,
			})
		}
	}
	return s
}

// Exemplar links one bucket's worst recent observation to its trace ID.
type Exemplar struct {
	Bucket int       `json:"bucket"` // index into Counts
	Value  float64   `json:"value"`
	Trace  int64     `json:"trace"`
	At     time.Time `json:"at"`
}

// HistogramSnapshot is the exported state of a Histogram.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max,omitempty"`
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	// Exemplars holds, for each bucket that saw a traced observation, the
	// trace ID of its worst recent one.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// WorstExemplar returns the exemplar with the largest value, or a zero
// Exemplar when no traced observation was recorded.
func (s HistogramSnapshot) WorstExemplar() Exemplar {
	var out Exemplar
	for _, e := range s.Exemplars {
		if e.Value >= out.Value {
			out = e
		}
	}
	return out
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing it, the standard fixed-bucket estimator. The
// overflow bucket reports its lower bound (the estimate cannot exceed
// observed data meaningfully there). Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: clamp to the largest finite bound (or Max
			// when it is known and larger).
			if s.Max > 0 {
				return s.Max
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry holds named metrics. Names are dotted paths
// ("invalidator.cycle_seconds"); a name identifies exactly one metric of
// one kind. Get-or-create accessors make wiring order irrelevant: the
// first caller creates, later callers share — but a name may only ever be
// one kind, and GaugeFuncs may not be re-registered: both are wiring bugs
// that used to silently shadow a metric, and now panic at registration.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	kinds      map[string]string // name -> "counter"|"gauge"|"gaugefunc"|"histogram"
	runtimeOn  bool              // RuntimeMetrics already registered
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
		kinds:      make(map[string]string),
	}
}

// checkKind records name's kind, panicking when the name is already
// registered as a different kind. Caller holds r.mu.
func (r *Registry) checkKind(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic("obs: metric " + name + " registered as " + kind + " but already exists as " + prev)
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge: fn is evaluated at snapshot
// time. Use for values another component already maintains (cache sizes,
// log positions) so the hot path records nothing. Unlike the get-or-create
// accessors there is nothing to share — re-registering a name panics
// instead of silently replacing the previous func.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.kinds[name]; ok {
		panic("obs: metric " + name + " registered as gaugefunc but already exists as " + prev)
	}
	r.kinds[name] = "gaugefunc"
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (LatencyBuckets when none are given). Later callers
// share the first creation's bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-serializable export of a Registry.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric's current value. GaugeFuncs are evaluated
// outside the registry lock so a slow or re-entrant func cannot deadlock
// registration.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, fn := range funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Vars flattens a snapshot into an expvar-style map: counters and gauges
// by name, histograms as name.count / name.sum / name.mean / name.p50 /
// name.p95 / name.p99 / name.max.
func (s Snapshot) Vars() map[string]any {
	out := make(map[string]any, len(s.Counters)+len(s.Gauges)+7*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+".count"] = h.Count
		out[name+".sum"] = h.Sum
		out[name+".mean"] = h.Mean()
		out[name+".p50"] = h.Quantile(0.50)
		out[name+".p95"] = h.Quantile(0.95)
		out[name+".p99"] = h.Quantile(0.99)
		out[name+".max"] = h.Max
	}
	return out
}
