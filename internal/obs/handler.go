package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// MetricsHandler serves the registry's full JSON snapshot — the
// /debug/metrics document.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// VarsHandler serves the flattened expvar-style view — the /debug/vars
// document: one JSON object, histogram percentiles precomputed.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot().Vars())
	})
}

// Mount attaches the debug endpoints to mux: /debug/metrics, /debug/vars,
// and (when withPprof) the net/http/pprof handlers under /debug/pprof/.
// The pprof routes are only reachable through muxes that call Mount with
// withPprof=true; nothing is registered on http.DefaultServeMux.
func Mount(mux *http.ServeMux, r *Registry, withPprof bool) {
	mux.Handle("/debug/metrics", MetricsHandler(r))
	mux.Handle("/debug/vars", VarsHandler(r))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Serve starts an HTTP server on addr exposing the Mount endpoints — the
// daemons' -debug-addr listener. It returns the server (for Close) and
// runs ListenAndServe in a background goroutine; startup errors surface
// through errf when non-nil.
func Serve(addr string, r *Registry, withPprof bool, errf func(error)) *http.Server {
	return ServeWith(addr, r, withPprof, errf, nil)
}

// ServeWith is Serve with a hook to register extra handlers (the daemons
// mount /debug/trace this way) on the same debug mux before it starts.
func ServeWith(addr string, r *Registry, withPprof bool, errf func(error), extra func(*http.ServeMux)) *http.Server {
	mux := http.NewServeMux()
	Mount(mux, r, withPprof)
	if extra != nil {
		extra(mux)
	}
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
	return srv
}

// LogLoop emits a one-line structured snapshot through logf every interval
// until stop closes — the optional periodic log export. Counters and
// gauges print as k=v; histograms as k.p50/p95/count. Keys are sorted so
// successive lines diff cleanly.
func LogLoop(r *Registry, interval time.Duration, logf func(format string, args ...any), stop <-chan struct{}) {
	if interval <= 0 || logf == nil {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			logf("obs: %s", FormatLine(r.Snapshot()))
		}
	}
}

// FormatLine renders a snapshot as a sorted single-line k=v list.
func FormatLine(s Snapshot) string {
	vars := s.Vars()
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		switch v := vars[k].(type) {
		case int64:
			b.WriteString(formatInt(v))
		case float64:
			b.WriteString(formatFloat(v))
		}
	}
	return b.String()
}

func formatInt(v int64) string {
	buf, _ := json.Marshal(v)
	return string(buf)
}

func formatFloat(v float64) string {
	buf, _ := json.Marshal(jsonRound(v))
	return string(buf)
}

// jsonRound trims float noise to 6 decimals for log lines. Values outside
// the safely scalable range pass through unchanged.
func jsonRound(v float64) float64 {
	if v != v || v <= 0 || v > 1e12 {
		return v
	}
	const scale = 1e6
	return float64(int64(v*scale+0.5)) / scale
}

// HTTPMiddleware wraps h, counting requests into <name>.requests_total and
// recording service time into the <name>.request_seconds histogram. The
// handles are resolved once, here, not per request.
func HTTPMiddleware(r *Registry, name string, h http.Handler) http.Handler {
	reqs := r.Counter(name + ".requests_total")
	lat := r.Histogram(name + ".request_seconds")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, req)
		reqs.Inc()
		lat.ObserveDuration(time.Since(start))
	})
}
