package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestDuplicateRegistrationPanics pins the metric-name hygiene contract:
// same-kind get-or-create sharing stays legal, cross-kind reuse and
// GaugeFunc re-registration panic instead of silently shadowing.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()

	// Same-kind sharing is the documented wiring model.
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same-kind counter sharing broke")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same-kind histogram sharing broke")
	}

	mustPanic(t, "already exists as counter", func() { r.Gauge("x") })
	mustPanic(t, "already exists as counter", func() { r.Histogram("x") })
	mustPanic(t, "already exists as counter", func() { r.GaugeFunc("x", func() int64 { return 0 }) })

	r.GaugeFunc("gf", func() int64 { return 1 })
	mustPanic(t, "already exists as gaugefunc", func() { r.GaugeFunc("gf", func() int64 { return 2 }) })
	mustPanic(t, "already exists as gaugefunc", func() { r.Counter("gf") })

	// The registry must still work after recovered panics.
	if got := r.Snapshot().Gauges["gf"]; got != 1 {
		t.Fatalf("gf = %d after duplicate attempt, want original 1", got)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.RuntimeMetrics()
	r.RuntimeMetrics() // idempotent: must not trip the duplicate panic

	runtime.GC()
	s := r.Snapshot()
	if s.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines = %d", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap_inuse_bytes"] <= 0 {
		t.Fatalf("heap_inuse_bytes = %d", s.Gauges["runtime.heap_inuse_bytes"])
	}
	if s.Gauges["runtime.gc_total"] < 1 {
		t.Fatalf("gc_total = %d", s.Gauges["runtime.gc_total"])
	}
	if s.Gauges["runtime.gc_pause_p99_ns"] <= 0 {
		t.Fatalf("gc_pause_p99_ns = %d", s.Gauges["runtime.gc_pause_p99_ns"])
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10)

	h.ObserveExemplar(0.5, 0) // untraced: counts, no exemplar
	if ex := h.Snapshot().Exemplars; len(ex) != 0 {
		t.Fatalf("untraced observation left exemplars: %+v", ex)
	}

	h.ObserveExemplar(0.5, 101)
	h.ObserveExemplar(0.3, 102) // smaller, fresh exemplar present: kept out
	h.ObserveExemplar(50, 103)  // overflow bucket
	s := h.Snapshot()
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v", s.Exemplars)
	}
	if s.Exemplars[0].Bucket != 0 || s.Exemplars[0].Trace != 101 || s.Exemplars[0].Value != 0.5 {
		t.Fatalf("bucket-0 exemplar = %+v, want worst (trace 101)", s.Exemplars[0])
	}
	if s.Exemplars[1].Bucket != 2 || s.Exemplars[1].Trace != 103 {
		t.Fatalf("overflow exemplar = %+v", s.Exemplars[1])
	}
	if w := s.WorstExemplar(); w.Trace != 103 {
		t.Fatalf("worst exemplar = %+v", w)
	}

	// A larger value replaces; so does any traced value once stale.
	h.ObserveExemplar(0.9, 104)
	if w := h.Snapshot().Exemplars[0]; w.Trace != 104 {
		t.Fatalf("larger value did not replace: %+v", w)
	}
	old := ExemplarTTL
	ExemplarTTL = 0
	defer func() { ExemplarTTL = old }()
	h.ObserveExemplar(0.1, 105)
	if w := h.Snapshot().Exemplars[0]; w.Trace != 105 {
		t.Fatalf("stale exemplar not replaced: %+v", w)
	}

	if got := h.Count(); got != 6 {
		t.Fatalf("ObserveExemplar must still count: %d", got)
	}
}

func TestLogLoopNoOp(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan struct{})
	go func() {
		LogLoop(r, 0, func(string, ...any) {}, stop) // interval<=0: return immediately
		LogLoop(r, time.Millisecond, nil, stop)      // nil logf: return immediately
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("LogLoop with no-op arguments did not return")
	}
}

func TestLogLoopTicksAndStops(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Add(7)

	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if format != "obs: %s" || len(args) != 1 {
			t.Errorf("logf(%q, %v)", format, args)
		}
		lines = append(lines, args[0].(string))
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		LogLoop(r, 5*time.Millisecond, logf, stop)
		close(done)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("LogLoop never ticked twice")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("LogLoop did not exit on stop")
	}

	mu.Lock()
	defer mu.Unlock()
	for _, line := range lines {
		if !strings.Contains(line, "ticks=7") {
			t.Fatalf("line %q missing ticks=7", line)
		}
	}
}

// TestFormatLineSorted pins the k=v format LogLoop emits: sorted keys,
// histogram suffixes flattened.
func TestFormatLineSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z").Set(1)
	r.Counter("a").Inc()
	r.Histogram("m", 1).Observe(0.5)
	line := FormatLine(r.Snapshot())
	if !strings.HasPrefix(line, "a=1 ") || !strings.HasSuffix(line, " z=1") {
		t.Fatalf("line not sorted: %q", line)
	}
	for _, want := range []string{"m.count=1", "m.sum=0.5", "m.p50=", "m.p95=", "m.p99=", "m.max=0.5"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %s", line, want)
		}
	}
}
