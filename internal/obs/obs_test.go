package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter: %d", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter not shared by name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge: %d", got)
	}
	r.GaugeFunc("gf", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != 4 || s.Gauges["gf"] != 42 {
		t.Fatalf("snapshot: %+v", s)
	}
}

// TestHistogramBucketBoundaries pins the le-semantics: a value exactly on a
// bound lands in that bound's bucket, one past it in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2, 4)
	h.Observe(1)   // == bounds[0] → bucket 0
	h.Observe(1.5) // bucket 1
	h.Observe(2)   // == bounds[1] → bucket 1
	h.Observe(4)   // == bounds[2] → bucket 2
	h.Observe(9)   // overflow bucket
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count: %d", s.Count)
	}
	if math.Abs(s.Sum-17.5) > 1e-9 {
		t.Fatalf("sum: %g", s.Sum)
	}
	if s.Max != 9 {
		t.Fatalf("max: %g", s.Max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 20, 30)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%30) + 0.5) // uniform over (0,30)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 10 || q > 20 {
		t.Fatalf("p50 outside middle bucket: %g", q)
	}
	if q := s.Quantile(0.99); q < 20 || q > 30 {
		t.Fatalf("p99 outside last bucket: %g", q)
	}
	if q := s.Quantile(1); q > 30 {
		t.Fatalf("p100 beyond max bound: %g", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean must be 0")
	}
	// All mass in the overflow bucket reports the observed max.
	h2 := r.Histogram("h2", 1)
	h2.Observe(50)
	if q := h2.Snapshot().Quantile(0.5); q != 50 {
		t.Fatalf("overflow quantile: %g", q)
	}
}

// TestRegistryConcurrency exercises registration and recording from many
// goroutines; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i) / per)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.counter"] != workers*per {
		t.Fatalf("counter lost updates: %d", s.Counters["shared.counter"])
	}
	h := s.Histograms["shared.hist"]
	if h.Count != workers*per {
		t.Fatalf("histogram lost observations: %d", h.Count)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Count {
		t.Fatalf("bucket counts %d != count %d", sum, h.Count)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.ObserveDuration(250 * time.Millisecond)
	s := h.Snapshot()
	if math.Abs(s.Sum-0.25) > 1e-9 {
		t.Fatalf("seconds: %g", s.Sum)
	}
}

func TestHandlersServeJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.total").Add(3)
	r.Histogram("a.seconds").Observe(0.02)

	mux := http.NewServeMux()
	Mount(mux, r, true)

	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["a.total"] != 3 || snap.Histograms["a.seconds"].Count != 1 {
		t.Fatalf("metrics content: %+v", snap)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/vars", nil))
	var vars map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if _, ok := vars["a.seconds.p95"]; !ok {
		t.Fatalf("vars missing histogram percentile: %v", vars)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rw.Code != 200 {
		t.Fatalf("pprof not mounted: %d", rw.Code)
	}

	// Without the flag, pprof must be absent.
	bare := http.NewServeMux()
	Mount(bare, r, false)
	rw = httptest.NewRecorder()
	bare.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rw.Code == 200 {
		t.Fatal("pprof mounted without flag")
	}
}

func TestHTTPMiddleware(t *testing.T) {
	r := NewRegistry()
	h := HTTPMiddleware(r, "web", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(204)
	}))
	for i := 0; i < 3; i++ {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
	}
	s := r.Snapshot()
	if s.Counters["web.requests_total"] != 3 {
		t.Fatalf("requests: %d", s.Counters["web.requests_total"])
	}
	if s.Histograms["web.request_seconds"].Count != 3 {
		t.Fatalf("latency samples: %d", s.Histograms["web.request_seconds"].Count)
	}
}

func TestFormatLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	line := FormatLine(r.Snapshot())
	if line != "a=2 b=1" {
		t.Fatalf("line: %q", line)
	}
}
