package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Server serves a Database over the wire protocol. One goroutine per
// connection; frames on a connection are processed sequentially, matching
// the paper's per-connection JDBC semantics.
type Server struct {
	DB *engine.Database

	// QueryDelay, when non-nil, returns an artificial service time added
	// before executing each query; experiments use it to emulate slower
	// hardware without touching the engine.
	QueryDelay func(sql string) time.Duration

	// Logf, when non-nil, receives diagnostic messages (default: silent).
	Logf func(format string, args ...any)

	// HeartbeatInterval is how often an idle SUBSCRIBE_LOG stream sends an
	// empty keepalive frame so client read deadlines stay sound
	// (DefaultHeartbeat when 0).
	HeartbeatInterval time.Duration

	// DisableBinary makes the server answer HELLO with its unknown-op error,
	// behaving exactly like a pre-binary peer: connections stay on JSON
	// framing. An operational escape hatch (-wire-binary=false) that doubles
	// as the old-server simulator in the fallback tests.
	DisableBinary bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	closeCh  chan struct{}
	wg       sync.WaitGroup

	// Stats
	queries     int64
	prepares    int64
	executes    int64
	subscribes  int64
	binaryConns int64
}

// maxConnStmts bounds prepared handles per connection; a client that leaks
// handles gets an error rather than growing server memory without bound.
const maxConnStmts = 1024

// connStmts is the per-connection prepared-statement table. serveConn
// processes frames sequentially, so no lock is needed.
type connStmts struct {
	next  int64
	stmts map[int64]*engine.PreparedStmt
}

// DefaultHeartbeat is the idle keepalive interval for SUBSCRIBE_LOG streams.
// It must stay below any client read deadline, so a live-but-quiet stream is
// distinguishable from a blackholed connection (the PR-3 fault model).
const DefaultHeartbeat = 2 * time.Second

// streamWriteTimeout bounds each frame write on a subscribe stream: a client
// that stops reading for this long is treated as gone and the stream drops
// (it resubscribes from its cursor, losing nothing).
const streamWriteTimeout = 30 * time.Second

// NewServer creates a server for db.
func NewServer(db *engine.Database) *Server {
	return &Server{DB: db, conns: make(map[net.Conn]struct{}), closeCh: make(chan struct{})}
}

// Listen binds addr ("host:port", ":0" for ephemeral) and starts accepting
// in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("wire: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cc := newConnCodec(conn)
	cs := &connStmts{stmts: make(map[int64]*engine.PreparedStmt)}
	for {
		var req Request
		if err := cc.readRequest(&req); err != nil {
			return // client went away or sent garbage; drop the connection
		}
		if req.Op == OpHello && !s.DisableBinary {
			// Negotiate binary framing: answer in JSON, then switch. With
			// DisableBinary the op falls through to handle's unknown-op
			// error, indistinguishable from a pre-binary server.
			resp := Response{WireVersion: BinaryVersion}
			if req.WireVersion < BinaryVersion {
				resp.WireVersion = 0 // client too old (or confused): stay JSON
			}
			if err := cc.writeResponse(&resp); err != nil {
				return
			}
			if resp.WireVersion >= BinaryVersion {
				cc.upgrade()
				s.mu.Lock()
				s.binaryConns++
				s.mu.Unlock()
			}
			continue
		}
		if req.Op == OpSubscribeLog {
			// The connection is dedicated to the stream from here on; when
			// the stream ends (either side closes, or a write stalls past its
			// deadline) the connection is dropped with it.
			s.serveSubscribe(conn, &cc, req)
			return
		}
		resp := s.handle(req, cs)
		if err := cc.writeResponse(&resp); err != nil {
			return
		}
	}
}

// serveSubscribe streams update-log batches to one client. The first frame is
// an empty ack (so the client can distinguish "subscribed" from an old
// server's unknown-op error before committing to stream mode); after that,
// record batches are pushed as they arrive, with empty heartbeat frames when
// idle. Frames with records carry NextLSN/FirstLSN/Truncated exactly as a
// LogSince response would; empty frames carry no cursor and must not advance
// the client's.
func (s *Server) serveSubscribe(conn net.Conn, cc *connCodec, req Request) {
	s.mu.Lock()
	s.subscribes++
	s.mu.Unlock()
	writeFrame := func(resp Response) error {
		conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		return cc.writeResponse(&resp)
	}
	if err := writeFrame(Response{}); err != nil {
		return
	}
	sub := s.DB.Log().Subscribe(req.LSN, 0)
	defer sub.Close()
	hb := s.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case b, ok := <-sub.C:
			if !ok {
				return
			}
			resp := Response{Truncated: b.Truncated, NextLSN: b.Next, FirstLSN: b.FirstSeq}
			for _, r := range b.Recs {
				resp.Records = append(resp.Records, EncodeRecord(r))
			}
			if err := writeFrame(resp); err != nil {
				return
			}
		case <-ticker.C:
			if err := writeFrame(Response{}); err != nil {
				return
			}
		case <-s.closeCh:
			return
		}
	}
}

func (s *Server) handle(req Request, cs *connStmts) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpPrepare:
		prep, err := s.DB.Prepare(req.Query)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if len(cs.stmts) >= maxConnStmts {
			return Response{Error: fmt.Sprintf("wire: too many prepared statements on this connection (max %d)", maxConnStmts)}
		}
		cs.next++
		cs.stmts[cs.next] = prep
		s.mu.Lock()
		s.prepares++
		s.mu.Unlock()
		return Response{StmtID: cs.next, NumArgs: prep.NumArgs()}
	case OpExecute:
		prep := cs.stmts[req.StmtID]
		if prep == nil {
			return Response{Error: fmt.Sprintf("%s %d", ErrUnknownStmt, req.StmtID)}
		}
		if d := s.queryDelay(prep.Template().Key); d > 0 {
			time.Sleep(d)
		}
		args := make([]mem.Value, len(req.Args))
		for i, w := range req.Args {
			args[i] = DecodeValue(w)
		}
		s.mu.Lock()
		s.queries++
		s.executes++
		s.mu.Unlock()
		res, err := prep.Exec(args)
		if err != nil {
			return Response{Error: err.Error()}
		}
		resp := Response{Columns: res.Columns, RowsAffected: res.RowsAffected}
		for _, r := range res.Rows {
			resp.Rows = append(resp.Rows, EncodeRow(r))
		}
		return resp
	case OpCloseStmt:
		if _, ok := cs.stmts[req.StmtID]; !ok {
			return Response{Error: fmt.Sprintf("%s %d", ErrUnknownStmt, req.StmtID)}
		}
		delete(cs.stmts, req.StmtID)
		return Response{}
	case OpQuery:
		if d := s.queryDelay(req.Query); d > 0 {
			time.Sleep(d)
		}
		s.mu.Lock()
		s.queries++
		s.mu.Unlock()
		res, err := s.DB.ExecSQL(req.Query)
		if err != nil {
			return Response{Error: err.Error()}
		}
		resp := Response{Columns: res.Columns, RowsAffected: res.RowsAffected}
		for _, r := range res.Rows {
			resp.Rows = append(resp.Rows, EncodeRow(r))
		}
		return resp
	case OpLogSince:
		// SinceNext observes records, cursor, and truncation context under one
		// lock acquisition; reading NextLSN separately would race with appends
		// and hand the client a cursor past records it never received.
		recs, truncated, next, first := s.DB.Log().SinceNext(req.LSN)
		resp := Response{Truncated: truncated, NextLSN: next, FirstLSN: first}
		for _, r := range recs {
			resp.Records = append(resp.Records, EncodeRecord(r))
		}
		return resp
	default:
		return Response{Error: fmt.Sprintf("wire: unknown op %q", req.Op)}
	}
}

func (s *Server) queryDelay(sql string) time.Duration {
	if s.QueryDelay == nil {
		return 0
	}
	return s.QueryDelay(sql)
}

// Queries returns the number of queries served so far (text and prepared).
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Prepares returns the number of PREPARE frames served.
func (s *Server) Prepares() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prepares
}

// Executes returns the number of EXECUTE frames served.
func (s *Server) Executes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executes
}

// Subscribes returns the number of SUBSCRIBE_LOG streams accepted.
func (s *Server) Subscribes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subscribes
}

// BinaryConns returns the number of connections that negotiated binary
// framing since the server started.
func (s *Server) BinaryConns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.binaryConns
}

// Conns returns the number of live client connections.
func (s *Server) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Instrument registers the server's counters with reg under "<prefix>.":
// queries served, open connections, and the update log's next LSN (its
// growth rate is the site's write throughput). Pull-style gauges — the
// query path is untouched.
func (s *Server) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".queries_total", s.Queries)
	reg.GaugeFunc(prefix+".prepares_total", s.Prepares)
	reg.GaugeFunc(prefix+".executes_total", s.Executes)
	reg.GaugeFunc(prefix+".conns", func() int64 { return int64(s.Conns()) })
	reg.GaugeFunc(prefix+".log_next_lsn", func() int64 { return s.DB.Log().NextLSN() })
	reg.GaugeFunc(prefix+".subscribes_total", s.Subscribes)
	reg.GaugeFunc(prefix+".binary_conns_total", s.BinaryConns)
	reg.GaugeFunc(prefix+".log_subscribers", func() int64 { return int64(s.DB.Log().Hub().Stats().Subscribers) })
	reg.GaugeFunc(prefix+".log_feed_lag", func() int64 { return s.DB.Log().Hub().Lag() })
	reg.GaugeFunc(prefix+".stmt_text_hits", func() int64 { return s.DB.StmtCacheStats().TextHits })
	reg.GaugeFunc(prefix+".stmt_template_hits", func() int64 { return s.DB.StmtCacheStats().TemplateHits })
	reg.GaugeFunc(prefix+".stmt_template_misses", func() int64 { return s.DB.StmtCacheStats().TemplateMisses })
}

// Close stops accepting, closes every live connection, and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closeCh)
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
