package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// startFeedServer is startServer with a test-tuned heartbeat, set before
// Listen so stream goroutines never race the field write.
func startFeedServer(t *testing.T, hb time.Duration) (*Server, string) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`CREATE TABLE kv (k TEXT PRIMARY KEY, v INT);`); err != nil {
		t.Fatal(err)
	}
	s := NewServer(db)
	s.HeartbeatInterval = hb
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

// startFakeLogServer runs a raw scripted server: serve is invoked per
// connection with its index and codecs.
func startFakeLogServer(t *testing.T, serve func(i int, conn net.Conn, dec *json.Decoder, enc *json.Encoder)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(i, c, json.NewDecoder(c), json.NewEncoder(c))
		}
	}()
	return ln.Addr().String()
}

// pullAll drains the feed until want records arrive (or the deadline), and
// fails on truncation.
func pullAll(t *testing.T, f *LogFeed, cursor int64, want int) ([]engine.UpdateRecord, int64) {
	t.Helper()
	var got []engine.UpdateRecord
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < want && time.Now().Before(deadline) {
		recs, trunc, next, err := f.PullSince(cursor)
		if err != nil {
			t.Fatalf("PullSince(%d): %v", cursor, err)
		}
		if trunc {
			t.Fatalf("unexpected truncation at cursor %d", cursor)
		}
		got = append(got, recs...)
		cursor = next
		if len(got) < want {
			time.Sleep(time.Millisecond)
		}
	}
	if len(got) != want {
		t.Fatalf("pulled %d of %d records", len(got), want)
	}
	return got, cursor
}

func TestLogFeedStreamsUpdates(t *testing.T) {
	s, addr := startFeedServer(t, 25*time.Millisecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLogFeed(c, 1, 0)
	defer f.Close()

	if _, err := s.DB.ExecSQL(`INSERT INTO kv VALUES ('a', 1)`); err != nil {
		t.Fatal(err)
	}
	got, next := pullAll(t, f, 1, 1)
	if got[0].LSN != 1 || got[0].Table != "kv" {
		t.Fatalf("record = %+v", got[0])
	}
	if next != 2 {
		t.Fatalf("cursor = %d, want 2", next)
	}

	// Changed fires when the stream delivers more. Obtain the channel first:
	// close-and-replace broadcast semantics.
	ch := f.Changed()
	if _, err := s.DB.ExecSQL(`INSERT INTO kv VALUES ('b', 2)`); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("Changed never fired after an insert")
	}
	got, next = pullAll(t, f, next, 1)
	if got[0].LSN != 2 || next != 3 {
		t.Fatalf("second pull: rec=%+v next=%d", got[0], next)
	}

	if f.Fallback() {
		t.Fatal("feed flipped to fallback against a current server")
	}
	if s.Subscribes() != 1 {
		t.Fatalf("server subscribes = %d", s.Subscribes())
	}
}

func TestLogFeedBackpressureDrainsInOrder(t *testing.T) {
	s, addr := startFeedServer(t, 25*time.Millisecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLogFeed(c, 1, 2) // tiny buffer: deliver must block, not drop
	defer f.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := s.DB.ExecSQL(fmt.Sprintf(`INSERT INTO kv VALUES ('k%d', %d)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	got, next := pullAll(t, f, 1, n)
	for i, r := range got {
		if r.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d (dup or skip)", i, r.LSN)
		}
	}
	if next != n+1 {
		t.Fatalf("final cursor = %d", next)
	}
}

// TestLogFeedFallsBackToPolling drives the feed against a server that
// predates SUBSCRIBE_LOG: the subscribe attempt gets an unknown-op error and
// the feed must degrade to LogSince polling on the same connection.
func TestLogFeedFallsBackToPolling(t *testing.T) {
	addr := startFakeLogServer(t, func(i int, conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		defer conn.Close()
		for {
			var req Request
			if dec.Decode(&req) != nil {
				return
			}
			switch req.Op {
			case OpLogSince:
				enc.Encode(Response{
					Records:  []LogRecord{{LSN: 1, Table: "kv", Op: "INSERT"}},
					NextLSN:  2,
					FirstLSN: 1,
				})
			default:
				// An old server's default branch: unknown op, clean frame.
				enc.Encode(Response{Error: fmt.Sprintf("wire: unknown op %q", req.Op)})
			}
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLogFeed(c, 1, 0)
	defer f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for !f.Fallback() {
		if time.Now().After(deadline) {
			t.Fatal("feed never detected the old server")
		}
		time.Sleep(time.Millisecond)
	}
	recs, trunc, next, err := f.PullSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 || trunc || next != 2 {
		t.Fatalf("fallback pull: recs=%v trunc=%v next=%d", recs, trunc, next)
	}
}

// TestLogFeedResubscribesFromCursor drops the stream mid-flight; the feed
// must reopen it and end up having delivered every record exactly once.
func TestLogFeedResubscribesFromCursor(t *testing.T) {
	var mu sync.Mutex
	var cursors []int64
	addr := startFakeLogServer(t, func(i int, conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		defer conn.Close()
		var req Request
		if dec.Decode(&req) != nil || req.Op != OpSubscribeLog {
			return
		}
		mu.Lock()
		cursors = append(cursors, req.LSN)
		mu.Unlock()
		enc.Encode(Response{}) // ack
		if i == 0 {
			// Two records, then the connection dies mid-stream.
			enc.Encode(Response{
				Records: []LogRecord{{LSN: 1, Table: "kv", Op: "INSERT"}, {LSN: 2, Table: "kv", Op: "INSERT"}},
				NextLSN: 3, FirstLSN: 1,
			})
			return
		}
		// Replacement stream: serve from the requested cursor (so a client
		// that resumes correctly gets no duplicates), then stay alive on
		// heartbeats.
		var recs []LogRecord
		for lsn := req.LSN; lsn <= 3; lsn++ {
			recs = append(recs, LogRecord{LSN: lsn, Table: "kv", Op: "INSERT"})
		}
		if len(recs) > 0 {
			enc.Encode(Response{Records: recs, NextLSN: 4, FirstLSN: 1})
		}
		for {
			time.Sleep(20 * time.Millisecond)
			if enc.Encode(Response{}) != nil {
				return
			}
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.BackoffBase = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	f := NewLogFeed(c, 1, 0)
	defer f.Close()

	got, next := pullAll(t, f, 1, 3)
	for i, r := range got {
		if r.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d (re-delivered or skipped across the drop)", i, r.LSN)
		}
	}
	if next != 4 {
		t.Fatalf("final cursor = %d", next)
	}
	if f.Resubscribes() < 1 {
		t.Fatal("resubscribe not counted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cursors) < 2 {
		t.Fatalf("server saw %d subscribes, want >= 2", len(cursors))
	}
}

// TestLogSinceRecomputesTruncationFromFirstLSN is the satellite regression:
// even when a response's Truncated flag is wrong (a reconnect or an
// intermediary lost the per-request context), FirstLSN carries the truncation
// boundary and the client recomputes the flag from it.
func TestLogSinceRecomputesTruncationFromFirstLSN(t *testing.T) {
	addr := startFakeLogServer(t, func(i int, conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		defer conn.Close()
		for {
			var req Request
			if dec.Decode(&req) != nil {
				return
			}
			enc.Encode(Response{
				Records:   []LogRecord{{LSN: 5, Table: "kv", Op: "INSERT"}, {LSN: 6, Table: "kv", Op: "INSERT"}},
				Truncated: false, // wrong: records 2..4 are gone
				NextLSN:   7,
				FirstLSN:  5,
			})
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, trunc, next, err := c.LogSince(2)
	if err != nil {
		t.Fatal(err)
	}
	if !trunc {
		t.Fatal("truncation not recomputed from FirstLSN")
	}
	if next != 7 {
		t.Fatalf("next = %d", next)
	}
	// At or past FirstLSN nothing was missed: no spurious second flush.
	if _, trunc, _, err = c.LogSince(5); err != nil || trunc {
		t.Fatalf("cursor at FirstLSN reported truncation (err=%v)", err)
	}
}

// TestServerCloseEndsActiveStream pins shutdown: Close must not wait on a
// heartbeat tick to tear down an idle stream.
func TestServerCloseEndsActiveStream(t *testing.T) {
	s, addr := startFeedServer(t, time.Hour)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLogFeed(c, 1, 0)
	defer f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never started")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung on the active stream")
	}
}
