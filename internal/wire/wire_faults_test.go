package wire

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// TestClientRecoversAfterMidStreamError drives the client against a server
// whose first connection answers with garbage (a desynced JSON stream). The
// client must fail that roundtrip, drop the connection, and succeed on the
// next call over a fresh connection — never reuse the poisoned decoder.
func TestClientRecoversAfterMidStreamError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		// First connection: read the request, answer with non-JSON garbage.
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		c.Read(buf)
		c.Write([]byte("!!not json!!\n"))
		c.Close()

		// Second connection (the client's redial): behave correctly.
		c, err = ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		dec := json.NewDecoder(c)
		enc := json.NewEncoder(c)
		var req Request
		if dec.Decode(&req) == nil {
			enc.Encode(Response{})
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.BackoffBase = time.Millisecond
	cl.MaxBackoff = 5 * time.Millisecond

	if err := cl.Ping(); err == nil {
		t.Fatal("Ping over a garbage stream succeeded")
	} else if !strings.Contains(err.Error(), "wire: receive") {
		t.Fatalf("mid-stream error not surfaced as a receive failure: %v", err)
	}

	// The poisoned connection must be gone so the next call redials.
	cl.mu.Lock()
	if cl.conn != nil {
		cl.mu.Unlock()
		t.Fatal("client kept the desynced connection open")
	}
	cl.mu.Unlock()

	// Retry until the backoff window opens; with a 1ms base this is quick.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err = cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: last err %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientDeadlineOnSilentServer connects to a server that accepts and
// then never responds. With a short Timeout the roundtrip must fail promptly
// instead of hanging forever.
func TestClientDeadlineOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			// Swallow the request, never answer.
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 100 * time.Millisecond

	start := time.Now()
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the roundtrip: took %s", elapsed)
	}

	// The timed-out connection must have been dropped for redial.
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.conn != nil {
		t.Fatal("client kept the timed-out connection open")
	}
}

// TestClientBackoffWindow verifies that after a failure the client refuses
// to redial until the backoff window elapses, then recovers.
func TestClientBackoffWindow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 100 * time.Millisecond
	cl.BackoffBase = 30 * time.Second // wide window: the fast-fail must not dial
	cl.MaxBackoff = time.Minute

	// Kill the server; the in-flight connection dies with it.
	ln.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping against a closed server succeeded")
	}

	// While backing off, calls fail fast without dialing.
	start := time.Now()
	err = cl.Ping()
	if err == nil {
		t.Fatal("Ping during backoff succeeded")
	}
	if !strings.Contains(err.Error(), "backing off") {
		t.Fatalf("expected a backoff fast-fail, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backoff fast-fail was not fast: %s", elapsed)
	}
}
