package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/engine"
)

// DefaultTimeout is the per-roundtrip I/O deadline (covering both the
// request write and the response read) when Client.Timeout is unset.
const DefaultTimeout = 10 * time.Second

// DefaultDialTimeout bounds connection establishment when Client.DialTimeout
// is unset.
const DefaultDialTimeout = 5 * time.Second

// Reconnect backoff defaults (see Client.BackoffBase / MaxBackoff).
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// Client is a synchronous wire-protocol client. A Client corresponds to one
// database connection; concurrent callers are serialized, as on a JDBC
// connection.
//
// The client is fault-tolerant: every roundtrip runs under a read/write
// deadline, and any encode or decode failure closes the connection outright
// — a JSON stream that erred mid-frame is desynced, and reusing it would
// misparse every later response. Subsequent roundtrips transparently redial
// with capped exponential backoff (plus jitter), so a restarted server is
// picked up without the caller doing anything; while the backoff window is
// open, roundtrips fail fast instead of hammering the dead address.
type Client struct {
	// Timeout is the per-roundtrip I/O deadline (DefaultTimeout when 0;
	// negative disables deadlines). Set before first use.
	Timeout time.Duration
	// DialTimeout bounds redials (DefaultDialTimeout when 0).
	DialTimeout time.Duration
	// BackoffBase / MaxBackoff shape the reconnect backoff
	// (DefaultBackoffBase / DefaultMaxBackoff when 0).
	BackoffBase time.Duration
	MaxBackoff  time.Duration
	// Binary asks for the length-prefixed binary framing: the first
	// roundtrip on each connection sends a HELLO and, if the server agrees,
	// every later frame is binary. A server that answers HELLO with an
	// unknown-op error is an old peer; the client then stays on JSON
	// permanently, like the PREPARE and SUBSCRIBE_LOG fallbacks. Set before
	// first use.
	Binary bool

	mu       sync.Mutex
	addr     string
	conn     net.Conn
	cc       connCodec
	jsonOnly bool // server predates HELLO: never offer binary again
	hello    bool // HELLO already attempted on the current connection
	closed   bool
	fails    int       // consecutive roundtrip/redial failures
	retryAt  time.Time // no redial before this instant
	epoch    uint64    // bumped on every (re)attach; see Stmt
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c.attach(conn)
	return c, nil
}

func (c *Client) timeout() time.Duration {
	if c.Timeout != 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return DefaultDialTimeout
}

func (c *Client) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return DefaultBackoffBase
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return DefaultMaxBackoff
}

// attach installs conn with fresh codec state (a new decoder drops any
// buffered bytes from a previous, possibly desynced stream). Each attach
// starts a new connection epoch: server-side prepared handles are
// per-connection, so statements prepared under an older epoch must
// re-prepare before executing.
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.cc = newConnCodec(conn)
	c.hello = false
	c.epoch++
}

// connEpoch returns the current connection epoch.
func (c *Client) connEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// dropLocked severs the current connection after a failure and arms the
// reconnect backoff. Callers hold c.mu.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.cc = connCodec{}
	}
	c.fails++
	c.retryAt = time.Now().Add(backoff.Delay(c.backoffBase(), c.fails, c.maxBackoff()))
}

// reconnectLocked redials the server, honoring the backoff window. Callers
// hold c.mu.
func (c *Client) reconnectLocked() error {
	if wait := time.Until(c.retryAt); wait > 0 {
		return fmt.Errorf("wire: reconnect to %s backing off for %s", c.addr, wait.Round(time.Millisecond))
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
	if err != nil {
		c.fails++
		c.retryAt = time.Now().Add(backoff.Delay(c.backoffBase(), c.fails, c.maxBackoff()))
		return fmt.Errorf("wire: redial %s: %w", c.addr, err)
	}
	c.attach(conn)
	return nil
}

// negotiateLocked performs the HELLO exchange once per connection when
// Binary is set. On agreement the connection's codec switches to binary
// framing; an unknown-op answer marks the server JSON-only for the client's
// lifetime (an old peer will not grow the op between reconnects). I/O
// failure drops the connection like any other failed roundtrip. Callers
// hold c.mu with c.conn live.
func (c *Client) negotiateLocked() error {
	if c.hello || !c.Binary || c.jsonOnly || c.cc.binary() {
		return nil
	}
	c.hello = true
	if t := c.timeout(); t > 0 {
		c.conn.SetDeadline(time.Now().Add(t))
	}
	hello := Request{Op: OpHello, WireVersion: BinaryVersion}
	if err := c.cc.writeRequest(&hello); err != nil {
		c.dropLocked()
		return fmt.Errorf("wire: hello send: %w", err)
	}
	var resp Response
	if err := c.cc.readResponse(&resp); err != nil {
		c.dropLocked()
		return fmt.Errorf("wire: hello receive: %w", err)
	}
	c.fails = 0
	if strings.Contains(resp.Error, "unknown op") {
		// An old server answered the frame cleanly; the connection is still
		// synced. Fall back to JSON for good.
		c.jsonOnly = true
		return nil
	}
	if resp.Error == "" && resp.WireVersion >= BinaryVersion {
		c.cc.upgrade()
	}
	// Any other answer (an error, or version 0): stay on JSON for this
	// connection and offer again after a reconnect.
	return nil
}

// UsingBinary reports whether the current connection negotiated binary
// framing.
func (c *Client) UsingBinary() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cc.binary()
}

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Response{}, errors.New("wire: client closed")
	}
	if c.conn == nil {
		if err := c.reconnectLocked(); err != nil {
			return Response{}, err
		}
	}
	if err := c.negotiateLocked(); err != nil {
		return Response{}, err
	}
	if t := c.timeout(); t > 0 {
		c.conn.SetDeadline(time.Now().Add(t))
	}
	if err := c.cc.writeRequest(&req); err != nil {
		c.dropLocked()
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp Response
	if err := c.cc.readResponse(&resp); err != nil {
		c.dropLocked()
		return Response{}, fmt.Errorf("wire: receive: %w", err)
	}
	c.fails = 0
	return resp, nil
}

// Query executes one SQL statement and returns its result.
func (c *Client) Query(sql string) (*engine.Result, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, Query: sql})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{Columns: resp.Columns, RowsAffected: resp.RowsAffected}
	for _, r := range resp.Rows {
		res.Rows = append(res.Rows, DecodeRow(r))
	}
	return res, nil
}

// LogSince pulls update-log records with LSN >= lsn. It returns the records,
// whether the log was truncated before lsn, and the LSN to poll from next.
// Truncation is recomputed client-side from the server's FirstLSN when
// present: the flag then depends only on (lsn, FirstLSN), not on which
// connection carried the request, so a mid-pull reconnect cannot make the
// caller observe the same truncation twice or not at all.
func (c *Client) LogSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	if lsn < 1 {
		lsn = 1
	}
	resp, err := c.roundTrip(Request{Op: OpLogSince, LSN: lsn})
	if err != nil {
		return nil, false, 0, err
	}
	if resp.Error != "" {
		return nil, false, 0, errors.New(resp.Error)
	}
	recs := make([]engine.UpdateRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, DecodeRecord(r))
	}
	truncated := resp.Truncated || (resp.FirstLSN > 0 && lsn < resp.FirstLSN)
	return recs, truncated, resp.NextLSN, nil
}

// ErrSubscribeUnsupported reports that the server predates SUBSCRIBE_LOG.
// The connection remains usable for plain roundtrips; callers should fall
// back to LogSince polling permanently, as Stmt falls back to text queries.
var ErrSubscribeUnsupported = errors.New("wire: server does not support subscribelog")

// streamLog opens a SUBSCRIBE_LOG stream at cursor and invokes deliver for
// every record-bearing frame until the stream fails, the server closes, or
// Close is called (which unblocks the read). It returns
// ErrSubscribeUnsupported — leaving the connection attached and synced — when
// the server answers with an unknown-op error.
//
// The stream reads the connection without holding c.mu, so the client must be
// dedicated: no concurrent roundtrips while a stream is open. Keep Timeout
// above the server's heartbeat interval — the per-frame read deadline relies
// on idle heartbeats to distinguish a quiet stream from a blackholed one.
func (c *Client) streamLog(cursor int64, deliver func(Response)) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("wire: client closed")
	}
	if c.conn == nil {
		if err := c.reconnectLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	if err := c.negotiateLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	conn, cc := c.conn, c.cc
	t := c.timeout()
	c.mu.Unlock()

	if t > 0 {
		conn.SetWriteDeadline(time.Now().Add(t))
	}
	sub := Request{Op: OpSubscribeLog, LSN: cursor}
	if err := cc.writeRequest(&sub); err != nil {
		c.dropConn(conn)
		return fmt.Errorf("wire: subscribe send: %w", err)
	}
	first := true
	for {
		if t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		var resp Response
		if err := cc.readResponse(&resp); err != nil {
			c.dropConn(conn)
			return fmt.Errorf("wire: subscribe receive: %w", err)
		}
		if first {
			first = false
			if strings.Contains(resp.Error, "unknown op") {
				// An old server answered the frame cleanly; the connection is
				// still synced, so keep it for the polling fallback.
				c.mu.Lock()
				c.fails = 0
				c.mu.Unlock()
				return ErrSubscribeUnsupported
			}
			c.mu.Lock()
			c.fails = 0
			c.mu.Unlock()
		}
		if resp.Error != "" {
			c.dropConn(conn)
			return fmt.Errorf("wire: subscribe: %s", resp.Error)
		}
		if len(resp.Records) == 0 && !resp.Truncated {
			continue // ack or heartbeat: no cursor movement
		}
		deliver(resp)
	}
}

// dropConn severs conn if it is still the client's current connection (arming
// the reconnect backoff); a connection already replaced or detached by Close
// is just closed.
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == conn {
		c.dropLocked()
		return
	}
	conn.Close()
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	return nil
}

// Close closes the underlying connection and disables reconnection. Safe to
// call twice.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
