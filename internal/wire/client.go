package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
)

// Client is a synchronous wire-protocol client. A Client corresponds to one
// database connection; concurrent callers are serialized, as on a JDBC
// connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}, nil
}

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Response{}, errors.New("wire: client closed")
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("wire: receive: %w", err)
	}
	return resp, nil
}

// Query executes one SQL statement and returns its result.
func (c *Client) Query(sql string) (*engine.Result, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, Query: sql})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{Columns: resp.Columns, RowsAffected: resp.RowsAffected}
	for _, r := range resp.Rows {
		res.Rows = append(res.Rows, DecodeRow(r))
	}
	return res, nil
}

// LogSince pulls update-log records with LSN >= lsn. It returns the records,
// whether the log was truncated before lsn, and the LSN to poll from next.
func (c *Client) LogSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	resp, err := c.roundTrip(Request{Op: OpLogSince, LSN: lsn})
	if err != nil {
		return nil, false, 0, err
	}
	if resp.Error != "" {
		return nil, false, 0, errors.New(resp.Error)
	}
	recs := make([]engine.UpdateRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, DecodeRecord(r))
	}
	return recs, resp.Truncated, resp.NextLSN, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	return nil
}

// Close closes the underlying connection. Safe to call twice.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
