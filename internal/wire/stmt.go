package wire

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// Stmt is a client-side prepared statement. It tracks the connection epoch it
// was prepared under: the client's transparent redial invalidates server-side
// handles (they are per-connection), so Exec re-prepares automatically when
// it notices the connection changed, and once more if the server still
// reports the handle unknown. Against a server that predates the PREPARE op,
// Exec falls back to binding the arguments client-side and sending plain
// QUERY text, so old peers keep working.
type Stmt struct {
	c       *Client
	sql     string
	parsed  sqlparser.Stmt // template AST for client-side binding fallback
	numArgs int

	mu       sync.Mutex
	id       int64
	epoch    uint64 // connection epoch the handle was prepared under
	textOnly bool   // server lacks prepare support; always bind client-side
	closed   bool
}

// Prepare compiles sql on the server and returns a reusable handle. The text
// is also parsed locally — both to fail fast on syntax errors without a
// network roundtrip, and to retain a bindable template for the old-peer text
// fallback.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	parsed, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	s := &Stmt{c: c, sql: sql, parsed: parsed, numArgs: len(sqlparser.Placeholders(parsed))}
	if err := s.prepareRemote(); err != nil {
		return nil, err
	}
	return s, nil
}

// NumArgs returns how many bind arguments Exec expects.
func (s *Stmt) NumArgs() int { return s.numArgs }

// prepareRemote sends PREPARE and records the handle and connection epoch.
// A server that answers "unknown op" flips the statement into text-only
// mode. Callers hold s.mu or have exclusive access to s.
func (s *Stmt) prepareRemote() error {
	if s.textOnly {
		return nil
	}
	resp, err := s.c.roundTrip(Request{Op: OpPrepare, Query: s.sql})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		if strings.Contains(resp.Error, "unknown op") {
			s.textOnly = true
			return nil
		}
		return errors.New(resp.Error)
	}
	if resp.NumArgs != s.numArgs {
		return fmt.Errorf("wire: server expects %d args for %q, client parsed %d", resp.NumArgs, s.sql, s.numArgs)
	}
	s.id = resp.StmtID
	s.epoch = s.c.connEpoch()
	return nil
}

// Exec runs the prepared statement with args bound to its placeholders.
func (s *Stmt) Exec(args []mem.Value) (*engine.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("wire: statement closed")
	}
	if len(args) != s.numArgs {
		return nil, fmt.Errorf("wire: statement wants %d args, got %d", s.numArgs, len(args))
	}
	if s.textOnly {
		return s.execText(args)
	}
	if s.epoch != s.c.connEpoch() {
		// The connection was redialed since we prepared; the server-side
		// handle died with the old connection.
		if err := s.prepareRemote(); err != nil {
			return nil, err
		}
		if s.textOnly {
			return s.execText(args)
		}
	}
	wargs := make([]WireValue, len(args))
	for i, a := range args {
		wargs[i] = EncodeValue(a)
	}
	resp, err := s.c.roundTrip(Request{Op: OpExecute, StmtID: s.id, Args: wargs})
	if err == nil && strings.Contains(resp.Error, ErrUnknownStmt) {
		// Raced with a reconnect between the epoch check and the roundtrip,
		// or the server otherwise dropped the handle: re-prepare once.
		if err := s.prepareRemote(); err != nil {
			return nil, err
		}
		if s.textOnly {
			return s.execText(args)
		}
		resp, err = s.c.roundTrip(Request{Op: OpExecute, StmtID: s.id, Args: wargs})
	}
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{Columns: resp.Columns, RowsAffected: resp.RowsAffected}
	for _, r := range resp.Rows {
		res.Rows = append(res.Rows, DecodeRow(r))
	}
	return res, nil
}

// execText binds args into the parsed template client-side and sends the
// rendered SQL as a plain QUERY — the compatibility path for old servers.
func (s *Stmt) execText(args []mem.Value) (*engine.Result, error) {
	lits := make([]sqlparser.Expr, len(args))
	for i, a := range args {
		lits[i] = a.Literal()
	}
	bound, err := sqlparser.Bind(s.parsed, lits)
	if err != nil {
		return nil, err
	}
	return s.c.Query(bound.String())
}

// Close releases the server-side handle. Best-effort: if the connection is
// down the handle died with it anyway.
func (s *Stmt) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.textOnly || s.epoch != s.c.connEpoch() {
		return nil
	}
	s.c.roundTrip(Request{Op: OpCloseStmt, StmtID: s.id})
	return nil
}
