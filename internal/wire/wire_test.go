package wire

import (
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE kv (k TEXT PRIMARY KEY, v INT);
		INSERT INTO kv VALUES ('a', 1), ('b', 2);
	`); err != nil {
		t.Fatal(err)
	}
	s := NewServer(db)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestQueryOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT v FROM kv WHERE k = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(1) {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestQueryErrorOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Query("SELECT * FROM nope"); err == nil {
		t.Fatal("want error")
	}
	// Connection survives an error response.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestValueRoundtripAllKinds(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	res, err := c.Query("SELECT 1, 2.5, 'str', TRUE, NULL")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	want := mem.Row{mem.Int(1), mem.Float(2.5), mem.Str("str"), mem.Bool(true), mem.Null()}
	for i, w := range want {
		if r[i] != w {
			t.Errorf("value %d: got %v, want %v", i, r[i], w)
		}
	}
}

func TestDMLAndLogSince(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	res, err := c.Query("UPDATE kv SET v = 10 WHERE k = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected: %d", res.RowsAffected)
	}
	// Initial inserts (2) + update (2 records).
	recs, trunc, next, err := c.LogSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if trunc || len(recs) != 4 || next != 5 {
		t.Fatalf("recs=%d trunc=%v next=%d", len(recs), trunc, next)
	}
	if recs[2].Op != engine.OpDelete || recs[3].Op != engine.OpInsert {
		t.Fatalf("update decomposition: %v %v", recs[2].Op, recs[3].Op)
	}
	if recs[3].Row[1] != mem.Int(10) {
		t.Fatalf("new image: %v", recs[3].Row)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				if _, err := c.Query("SELECT COUNT(*) FROM kv"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryDelayHook(t *testing.T) {
	s, addr := startServer(t)
	s.QueryDelay = func(string) time.Duration { return 30 * time.Millisecond }
	c, _ := Dial(addr)
	defer c.Close()
	start := time.Now()
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay hook not applied: %v", d)
	}
}

func TestServerQueriesCounter(t *testing.T) {
	s, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	before := s.Queries()
	c.Query("SELECT 1")
	c.Query("SELECT 1")
	if got := s.Queries() - before; got != 2 {
		t.Fatalf("queries: %d", got)
	}
}

func TestCloseUnblocksClients(t *testing.T) {
	s, addr := startServer(t)
	c, _ := Dial(addr)
	s.Close()
	if _, err := c.Query("SELECT 1"); err == nil {
		t.Fatal("query against closed server should fail")
	}
	// Client close after server close is fine.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Double server close is fine.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientClosedErrors(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	c.Close()
	if _, err := c.Query("SELECT 1"); err == nil {
		t.Fatal("want closed error")
	}
}

func TestUnknownOp(t *testing.T) {
	s := NewServer(engine.NewDatabase())
	resp := s.handle(Request{Op: "bogus"}, &connStmts{stmts: map[int64]*engine.PreparedStmt{}})
	if resp.Error == "" {
		t.Fatal("want error for unknown op")
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	rec := engine.UpdateRecord{
		LSN:     7,
		Time:    time.Unix(100, 5),
		Table:   "Car",
		Op:      engine.OpDelete,
		Columns: []string{"a", "b"},
		Row:     mem.Row{mem.Str("x"), mem.Null()},
	}
	back := DecodeRecord(EncodeRecord(rec))
	if back.LSN != rec.LSN || !back.Time.Equal(rec.Time) || back.Table != rec.Table ||
		back.Op != rec.Op || back.Row[0] != rec.Row[0] || !back.Row[1].IsNull() {
		t.Fatalf("roundtrip: %+v", back)
	}
}
