package wire

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultFeedBuffer bounds how many update records a LogFeed holds between
// the stream and its consumer before backpressure stops the read.
const DefaultFeedBuffer = 1 << 16

// LogFeed consumes a server's SUBSCRIBE_LOG stream on a dedicated Client and
// re-presents it with the LogSince pull contract: PullSince drains whatever
// the stream has buffered, so the invalidator's cycle logic runs unchanged in
// event-driven mode — only the trigger (Changed) and the transport differ
// from polling.
//
// The feed heals itself: a dropped stream resubscribes from the last buffered
// cursor through the client's reconnect backoff, losing nothing and
// re-delivering nothing. Against a server that predates SUBSCRIBE_LOG the
// feed flips permanently to polling — PullSince delegates straight to
// Client.LogSince and Changed never fires, so an event-driven consumer
// degrades to its timer fallback, mirroring the prepared-statement text-only
// fallback.
type LogFeed struct {
	c      *Client
	buffer int

	mu        sync.Mutex
	cond      *sync.Cond // signals buffer space to the stream goroutine
	recs      []engine.UpdateRecord
	truncated bool  // sticky until the next PullSince reports it
	firstLSN  int64 // newest remote truncation context seen
	next      int64 // resume cursor: one past the last buffered record
	low       int64 // oldest LSN still answerable from the buffer
	changed   chan struct{}
	closed    bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	unsupported  atomic.Bool
	resubscribes atomic.Int64
	delivered    atomic.Int64
	bursts       atomic.Int64 // frames that carried records

	tracer atomic.Pointer[trace.Tracer]
}

// NewLogFeed starts streaming the server's update log from cursor on c, which
// must be dedicated to this feed (streams own the connection; see
// Client.streamLog). buffer bounds buffered records (DefaultFeedBuffer when
// <= 0). Close the feed to stop the stream and the client.
func NewLogFeed(c *Client, cursor int64, buffer int) *LogFeed {
	if buffer <= 0 {
		buffer = DefaultFeedBuffer
	}
	if cursor < 1 {
		cursor = 1
	}
	f := &LogFeed{
		c:       c,
		buffer:  buffer,
		next:    cursor,
		low:     cursor,
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	go f.run()
	return f
}

// run keeps one stream open, resubscribing from the resume cursor after each
// failure with capped jittered backoff (the client's reconnect backoff gates
// the redial itself; this pause keeps the subscribe loop from spinning while
// that window is open).
func (f *LogFeed) run() {
	defer close(f.done)
	attempts := 0
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		f.mu.Lock()
		cursor := f.next
		f.mu.Unlock()
		got := false
		err := f.c.streamLog(cursor, func(resp Response) {
			got = true
			f.deliver(resp)
		})
		if errors.Is(err, ErrSubscribeUnsupported) {
			f.unsupported.Store(true)
			f.wake() // let any Changed waiter re-evaluate once
			return
		}
		if got {
			attempts = 0
		}
		attempts++
		f.resubscribes.Add(1)
		select {
		case <-f.stop:
			return
		case <-time.After(backoff.Delay(f.c.backoffBase(), attempts, f.c.maxBackoff())):
		}
	}
}

// deliver buffers one record-bearing frame, blocking for space when the
// consumer is behind (backpressure propagates to the server through the
// unread TCP stream, exactly like a slow subscriber on the hub).
func (f *LogFeed) deliver(resp Response) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.recs) >= f.buffer && !f.closed {
		f.cond.Wait()
	}
	if f.closed {
		return
	}
	tr := f.tracer.Load()
	now := time.Now()
	for _, r := range resp.Records {
		rec := DecodeRecord(r)
		if rec.LSN >= f.next {
			f.recs = append(f.recs, rec)
			// feed.deliver: commit to stream delivery on this consumer —
			// the wire hop of the trace, parented on the commit span.
			if tr.Recording(rec.Trace) {
				ctx := tr.Record(trace.Context{Trace: rec.Trace, Span: rec.Span},
					"feed.deliver", rec.Time, now)
				rec.Trace, rec.Span = ctx.Trace, ctx.Span
				f.recs[len(f.recs)-1] = rec
			}
		}
	}
	f.truncated = f.truncated || resp.Truncated
	if resp.FirstLSN > f.firstLSN {
		f.firstLSN = resp.FirstLSN
	}
	if resp.NextLSN > f.next {
		f.next = resp.NextLSN
	}
	f.delivered.Add(int64(len(resp.Records)))
	f.bursts.Add(1)
	close(f.changed)
	f.changed = make(chan struct{})
}

func (f *LogFeed) wake() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.changed)
	f.changed = make(chan struct{})
}

// PullSince drains the buffered stream: records with LSN >= lsn, whether the
// server's log was truncated before the caller's cursor, and the cursor to
// pull from next. It never blocks on the network — in feed mode the answer is
// whatever the stream has delivered so far. In fallback mode (old server) it
// is a plain LogSince roundtrip.
func (f *LogFeed) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	if f.unsupported.Load() {
		return f.c.LogSince(lsn)
	}
	if lsn < 1 {
		lsn = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false, lsn, errors.New("wire: log feed closed")
	}
	truncated := f.truncated
	f.truncated = false
	// A cursor behind what this feed can still serve (records drained by an
	// earlier pull) is a miss, same as a log that trimmed past it.
	if lsn < f.low {
		truncated = true
	}
	var out []engine.UpdateRecord
	for _, r := range f.recs {
		if r.LSN >= lsn {
			out = append(out, r)
		}
	}
	f.recs = f.recs[:0]
	next := f.next
	if next < lsn {
		next = lsn
	}
	f.low = next
	f.cond.Broadcast()
	return out, truncated, next, nil
}

// Changed returns a channel closed when the stream has delivered new records
// since the call — the event-driven trigger. Re-obtain it after each wakeup.
// In fallback mode the channel never fires; consumers keep their timer.
func (f *LogFeed) Changed() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.changed
}

// FirstLSN returns the newest truncation context received from the server (0
// if none was ever needed).
func (f *LogFeed) FirstLSN() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstLSN
}

// Next returns the resume cursor: one past the newest record the stream has
// delivered. Waiting for Next to reach a log's head is how a caller knows
// the feed has caught up with records appended before it subscribed.
func (f *LogFeed) Next() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Buffered returns how many records are waiting for the next PullSince.
func (f *LogFeed) Buffered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recs)
}

// Resubscribes counts stream re-establishments (drops, not the first
// subscribe).
func (f *LogFeed) Resubscribes() int64 { return f.resubscribes.Load() }

// Delivered counts records received from the stream.
func (f *LogFeed) Delivered() int64 { return f.delivered.Load() }

// Bursts counts record-bearing frames received — Delivered/Bursts is the
// mean coalesced-burst size.
func (f *LogFeed) Bursts() int64 { return f.bursts.Load() }

// Fallback reports whether the feed degraded to LogSince polling because the
// server does not speak SUBSCRIBE_LOG.
func (f *LogFeed) Fallback() bool { return f.unsupported.Load() }

// SetTracer attaches a pipeline tracer: each sampled record delivered by
// the stream gets a "feed.deliver" span (commit time → delivery time) and
// the record's context is advanced to it, so invalidator spans parent on
// the feed hop. nil detaches.
func (f *LogFeed) SetTracer(t *trace.Tracer) { f.tracer.Store(t) }

// Instrument registers the feed's health under "<prefix>.": buffer occupancy
// (records waiting for the next pull), records and record-bearing frames
// received (their ratio is the mean coalesced-burst size), stream
// re-establishments, and whether the feed degraded to polling. Pull-style
// gauges, so the stream path is untouched.
func (f *LogFeed) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".buffered", func() int64 { return int64(f.Buffered()) })
	reg.GaugeFunc(prefix+".delivered_total", f.Delivered)
	reg.GaugeFunc(prefix+".bursts_total", f.Bursts)
	reg.GaugeFunc(prefix+".resubscribes_total", f.Resubscribes)
	reg.GaugeFunc(prefix+".fallback", func() int64 {
		if f.Fallback() {
			return 1
		}
		return 0
	})
}

// Close stops the stream and closes the underlying client. Safe to call
// twice; blocks until the stream goroutine exits.
func (f *LogFeed) Close() error {
	f.stopOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		f.cond.Broadcast()
		f.mu.Unlock()
		close(f.stop)
		f.c.Close() // unblocks a read in flight
	})
	<-f.done
	return nil
}
