package wire

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

// BenchmarkWireLogSince measures the feed hot path — pulling a batch of
// update-log records over a live TCP connection — under each framing.
// ns/op is one full LogSince roundtrip for the batch; allocs/op shows the
// pooled binary framing shedding the per-record JSON encode/decode garbage.
func BenchmarkWireLogSince(b *testing.B) {
	const batch = 256
	for _, mode := range []struct {
		name   string
		binary bool
	}{
		{"codec=json", false},
		{"codec=binary", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := engine.NewDatabase()
			if _, err := db.ExecScript(`CREATE TABLE kv (k TEXT PRIMARY KEY, v INT, w FLOAT);`); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < batch; i++ {
				if _, err := db.ExecSQL(fmt.Sprintf(
					"INSERT INTO kv VALUES ('key-%04d', %d, %d.5)", i, i, i)); err != nil {
					b.Fatal(err)
				}
			}
			s := NewServer(db)
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			c, err := Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			c.Binary = mode.binary
			defer c.Close()
			// Prime the connection (and the negotiation, when binary).
			if _, _, _, err := c.LogSince(1); err != nil {
				b.Fatal(err)
			}
			if c.UsingBinary() != mode.binary {
				b.Fatalf("UsingBinary = %v, want %v", c.UsingBinary(), mode.binary)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, _, _, err := c.LogSince(1)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != batch {
					b.Fatalf("pulled %d records, want %d", len(recs), batch)
				}
			}
		})
	}
}
