// Package wire implements the client/server protocol of the reproduction's
// DBMS: newline-delimited JSON frames over TCP, upgradable per connection to
// length-prefixed binary frames via the HELLO handshake (see binary.go).
// It is the network boundary
// that the paper's JDBC drivers provided; the query-logging wrapper in
// internal/driver interposes on it exactly as the paper's JDBC wrapper did
// (§3.2), and the invalidator uses the LogSince operation to pull the
// database update log (§4.2.1).
package wire

import (
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
)

// Op is the request operation.
type Op string

// Request operations.
const (
	OpQuery     Op = "query"     // execute one SQL statement
	OpLogSince  Op = "logsince"  // fetch update-log records with LSN >= LSN
	OpPing      Op = "ping"      // liveness probe
	OpPrepare   Op = "prepare"   // compile a statement, returning a handle
	OpExecute   Op = "execute"   // execute a prepared handle with arguments
	OpCloseStmt Op = "closestmt" // release a prepared handle
	// OpSubscribeLog switches the connection into streaming mode: the server
	// pushes update-log record batches (and idle heartbeats) as frames on
	// this connection, starting at Request.LSN, until either side closes.
	// The connection is dedicated to the stream from then on.
	OpSubscribeLog Op = "subscribelog"
	// OpHello negotiates the binary framing (see binary.go). The request
	// carries the highest WireVersion the client speaks; the response carries
	// the version the server selected (0 = stay on JSON). Both frames are
	// always JSON; on agreement the very next frame in each direction is
	// binary. An old server answers with its usual unknown-op error, which a
	// client treats exactly like the PREPARE and SUBSCRIBE_LOG fallbacks: it
	// stays on JSON permanently.
	OpHello Op = "hello"
)

// ErrUnknownStmt is the error-text prefix a server sends when an EXECUTE or
// CLOSE_STMT names a handle this connection never prepared (or prepared on a
// previous connection — handles are per-connection, so a reconnect discards
// them). Clients detect it to re-prepare transparently.
const ErrUnknownStmt = "wire: unknown statement handle"

// Request is one client→server frame.
type Request struct {
	Op    Op     `json:"op"`
	Query string `json:"query,omitempty"`
	LSN   int64  `json:"lsn,omitempty"`
	// StmtID names a prepared-statement handle for OpExecute / OpCloseStmt.
	StmtID int64 `json:"stmt_id,omitempty"`
	// Args are the bind values for OpExecute, in placeholder order.
	Args []WireValue `json:"args,omitempty"`
	// WireVersion is the binary protocol version offered by OpHello (zero
	// on every other op, and when the client is JSON-only).
	WireVersion int `json:"wire_version,omitempty"`
}

// LogRecord is the wire form of an engine.UpdateRecord. Trace/Span carry
// the commit's pipeline-trace context in-band (omitted when zero, so
// untraced deployments and old peers see identical frames).
type LogRecord struct {
	LSN     int64       `json:"lsn"`
	TimeNS  int64       `json:"time_ns"`
	Table   string      `json:"table"`
	Op      string      `json:"op"` // "INSERT" or "DELETE"
	Columns []string    `json:"columns"`
	Row     []WireValue `json:"row"`
	Trace   int64       `json:"trace,omitempty"`
	Span    int64       `json:"span,omitempty"`
}

// WireValue is the wire form of a mem.Value.
type WireValue struct {
	// K is the kind: "n" null, "i" int, "f" float, "s" string, "b" bool.
	K string  `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

// Response is one server→client frame.
type Response struct {
	Error        string        `json:"error,omitempty"`
	Columns      []string      `json:"columns,omitempty"`
	Rows         [][]WireValue `json:"rows,omitempty"`
	RowsAffected int           `json:"rows_affected,omitempty"`
	Records      []LogRecord   `json:"records,omitempty"`
	Truncated    bool          `json:"truncated,omitempty"`
	NextLSN      int64         `json:"next_lsn,omitempty"`
	// FirstLSN is the oldest LSN the server's log still retained when this
	// response was built — the truncation context. Clients recompute
	// truncation as lsn < FirstLSN, so a reconnect mid-pull cannot lose the
	// flag's meaning (0 = context not needed / pre-FirstLSN server).
	FirstLSN int64 `json:"first_lsn,omitempty"`
	// StmtID / NumArgs answer OpPrepare: the handle to execute by, and how
	// many bind arguments the statement expects.
	StmtID  int64 `json:"stmt_id,omitempty"`
	NumArgs int   `json:"num_args,omitempty"`
	// WireVersion answers OpHello: the binary protocol version the server
	// selected (0 = the connection stays on JSON framing).
	WireVersion int `json:"wire_version,omitempty"`
}

// EncodeValue converts a mem.Value to its wire form.
func EncodeValue(v mem.Value) WireValue {
	switch v.Kind {
	case mem.KindInt:
		return WireValue{K: "i", I: v.I}
	case mem.KindFloat:
		return WireValue{K: "f", F: v.F}
	case mem.KindString:
		return WireValue{K: "s", S: v.S}
	case mem.KindBool:
		return WireValue{K: "b", B: v.B}
	default:
		return WireValue{K: "n"}
	}
}

// DecodeValue converts a wire value back to a mem.Value. Unknown kinds
// decode as NULL, keeping the decoder total.
func DecodeValue(w WireValue) mem.Value {
	switch w.K {
	case "i":
		return mem.Int(w.I)
	case "f":
		return mem.Float(w.F)
	case "s":
		return mem.Str(w.S)
	case "b":
		return mem.Bool(w.B)
	default:
		return mem.Null()
	}
}

// EncodeRow converts a mem.Row.
func EncodeRow(r mem.Row) []WireValue {
	out := make([]WireValue, len(r))
	for i, v := range r {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeRow converts a wire row.
func DecodeRow(ws []WireValue) mem.Row {
	out := make(mem.Row, len(ws))
	for i, w := range ws {
		out[i] = DecodeValue(w)
	}
	return out
}

// EncodeRecord converts an engine.UpdateRecord.
func EncodeRecord(r engine.UpdateRecord) LogRecord {
	return LogRecord{
		LSN:     r.LSN,
		TimeNS:  r.Time.UnixNano(),
		Table:   r.Table,
		Op:      r.Op.String(),
		Columns: r.Columns,
		Row:     EncodeRow(r.Row),
		Trace:   r.Trace,
		Span:    r.Span,
	}
}

// DecodeRecord converts a wire record back to an engine.UpdateRecord.
func DecodeRecord(r LogRecord) engine.UpdateRecord {
	op := engine.OpInsert
	if r.Op == "DELETE" {
		op = engine.OpDelete
	}
	return engine.UpdateRecord{
		LSN:     r.LSN,
		Time:    time.Unix(0, r.TimeNS),
		Table:   r.Table,
		Op:      op,
		Columns: r.Columns,
		Row:     DecodeRow(r.Row),
		Trace:   r.Trace,
		Span:    r.Span,
	}
}
