package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
)

// dialBinary dials addr with binary framing requested.
func dialBinary(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Binary = true
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBinaryNegotiation covers the happy path: HELLO upgrades the
// connection, and every op — text query with all value kinds, prepared
// statements, the update log — works over binary frames.
func TestBinaryNegotiation(t *testing.T) {
	s, addr := startServer(t)
	c := dialBinary(t, addr)

	res, err := c.Query("SELECT 1, 2.5, 'str', TRUE, NULL")
	if err != nil {
		t.Fatal(err)
	}
	if !c.UsingBinary() {
		t.Fatal("connection did not negotiate binary framing")
	}
	if got := s.BinaryConns(); got != 1 {
		t.Fatalf("BinaryConns = %d, want 1", got)
	}
	want := mem.Row{mem.Int(1), mem.Float(2.5), mem.Str("str"), mem.Bool(true), mem.Null()}
	for i, w := range want {
		if res.Rows[0][i] != w {
			t.Errorf("value %d: got %v, want %v", i, res.Rows[0][i], w)
		}
	}

	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	pres, err := st.Exec([]mem.Value{mem.Str("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Rows) != 1 || pres.Rows[0][0] != mem.Int(2) {
		t.Fatalf("prepared rows: %v", pres.Rows)
	}

	recs, trunc, next, err := c.LogSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if trunc || len(recs) != 2 || next != 3 {
		t.Fatalf("log: recs=%d trunc=%v next=%d", len(recs), trunc, next)
	}
}

// TestBinaryEqualsJSON pins codec equivalence end to end: the same op
// sequence through a binary client and a JSON client must produce deeply
// equal results.
func TestBinaryEqualsJSON(t *testing.T) {
	_, addr := startServer(t)
	bin := dialBinary(t, addr)
	jsn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer jsn.Close()

	for _, q := range []string{
		"SELECT 1, 2.5, 'str', TRUE, NULL",
		"SELECT * FROM kv WHERE v > 0",
		"SELECT COUNT(*) FROM kv",
	} {
		br, berr := bin.Query(q)
		jr, jerr := jsn.Query(q)
		if (berr == nil) != (jerr == nil) {
			t.Fatalf("%s: binary err %v, json err %v", q, berr, jerr)
		}
		if !reflect.DeepEqual(br, jr) {
			t.Fatalf("%s: binary %+v != json %+v", q, br, jr)
		}
	}
	if !bin.UsingBinary() || jsn.UsingBinary() {
		t.Fatalf("codec split wrong: bin=%v json=%v", bin.UsingBinary(), jsn.UsingBinary())
	}

	brecs, btr, bnext, err := bin.LogSince(1)
	if err != nil {
		t.Fatal(err)
	}
	jrecs, jtr, jnext, err := jsn.LogSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if btr != jtr || bnext != jnext || !reflect.DeepEqual(brecs, jrecs) {
		t.Fatalf("log mismatch: binary (%v,%v,%+v) json (%v,%v,%+v)", btr, bnext, brecs, jtr, jnext, jrecs)
	}
}

// TestBinaryOldPeerFallback: a server that predates HELLO (simulated by
// DisableBinary) answers with its unknown-op error; the client must stay on
// JSON permanently — including across reconnects, without re-offering.
func TestBinaryOldPeerFallback(t *testing.T) {
	s, addr := startServer(t)
	s.DisableBinary = true
	c := dialBinary(t, addr)

	res, err := c.Query("SELECT v FROM kv WHERE k = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(1) {
		t.Fatalf("rows: %v", res.Rows)
	}
	if c.UsingBinary() {
		t.Fatal("negotiated binary against an old peer")
	}
	if s.BinaryConns() != 0 {
		t.Fatalf("BinaryConns = %d, want 0", s.BinaryConns())
	}
	c.mu.Lock()
	sticky := c.jsonOnly
	c.mu.Unlock()
	if !sticky {
		t.Fatal("fallback not sticky")
	}

	// Sever the connection; the reconnect must not re-offer HELLO.
	c.mu.Lock()
	c.conn.Close()
	c.conn, c.cc = nil, connCodec{}
	c.mu.Unlock()
	c.BackoffBase = time.Millisecond
	time.Sleep(2 * time.Millisecond)
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	offered := c.hello
	c.mu.Unlock()
	if offered {
		t.Fatal("client re-offered HELLO to a known JSON-only server")
	}
}

// TestBinaryReconnectRenegotiates: binary framing is per-connection state,
// so a redial negotiates again.
func TestBinaryReconnectRenegotiates(t *testing.T) {
	s, addr := startServer(t)
	c := dialBinary(t, addr)
	c.BackoffBase = time.Millisecond
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.conn.Close()
	c.conn, c.cc = nil, connCodec{}
	c.mu.Unlock()
	time.Sleep(2 * time.Millisecond)
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if !c.UsingBinary() {
		t.Fatal("reconnect did not renegotiate binary")
	}
	if got := s.BinaryConns(); got != 2 {
		t.Fatalf("BinaryConns = %d, want 2", got)
	}
}

// TestBinaryFeedStream runs the SUBSCRIBE_LOG stream over binary frames.
func TestBinaryFeedStream(t *testing.T) {
	s, addr := startFeedServer(t, 25*time.Millisecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Binary = true
	f := NewLogFeed(c, 1, 0)
	defer f.Close()

	if _, err := s.DB.ExecSQL(`INSERT INTO kv VALUES ('a', 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB.ExecSQL(`INSERT INTO kv VALUES ('b', 2)`); err != nil {
		t.Fatal(err)
	}
	recs, _ := pullAll(t, f, 1, 2)
	if recs[0].Table != "kv" || recs[1].Row[1] != mem.Int(2) {
		t.Fatalf("records: %+v", recs)
	}
	if !c.UsingBinary() {
		t.Fatal("feed stream did not negotiate binary")
	}
}

// startFakeBinaryServer scripts a server that completes the HELLO exchange
// in JSON and then hands the upgraded connection to serve.
func startFakeBinaryServer(t *testing.T, serve func(conn net.Conn, bin *binaryCodec)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec, enc := json.NewDecoder(conn), json.NewEncoder(conn)
				var req Request
				if dec.Decode(&req) != nil || req.Op != OpHello {
					return
				}
				if enc.Encode(Response{WireVersion: BinaryVersion}) != nil {
					return
				}
				serve(conn, newBinaryCodec(io.MultiReader(dec.Buffered(), conn), conn))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestBinaryCorruptFrameDropsClientConn: a mid-frame decode failure on the
// client must sever the connection outright — there is no resync point in a
// length-prefixed stream — and the next roundtrip redials.
func TestBinaryCorruptFrameDropsClientConn(t *testing.T) {
	for _, tc := range []struct {
		name  string
		write func(conn net.Conn)
	}{
		{"oversized-length-prefix", func(conn net.Conn) {
			conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
		}},
		{"truncated-frame", func(conn net.Conn) {
			// Header promises 100 payload bytes; deliver 3 and close.
			hdr := make([]byte, 4, 7)
			binary.BigEndian.PutUint32(hdr, 100)
			conn.Write(append(hdr, 1, 2, 3))
			conn.Close()
		}},
		{"garbage-payload", func(conn net.Conn) {
			// Well-formed header, undecodable response payload.
			hdr := make([]byte, 4, 8)
			binary.BigEndian.PutUint32(hdr, 4)
			conn.Write(append(hdr, 0xFF, 0xFF, 0xFF, 0xFF))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr := startFakeBinaryServer(t, func(conn net.Conn, bin *binaryCodec) {
				var req Request
				if bin.readRequest(&req) != nil {
					return
				}
				tc.write(conn)
			})
			c := dialBinary(t, addr)
			_, err := c.Query("SELECT 1")
			if err == nil || !strings.Contains(err.Error(), "wire: receive") {
				t.Fatalf("err = %v, want wire: receive", err)
			}
			c.mu.Lock()
			dropped := c.conn == nil
			c.mu.Unlock()
			if !dropped {
				t.Fatal("corrupt frame did not drop the connection")
			}
		})
	}
}

// TestBinaryCorruptFrameDropsServerConn: the server, too, must drop a
// connection whose binary stream fails to decode rather than answer or
// resync.
func TestBinaryCorruptFrameDropsServerConn(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.WriteString(conn, `{"op":"hello","wire_version":1}`+"\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil || resp.WireVersion != BinaryVersion {
		t.Fatalf("hello answer: %q err %v", line, err)
	}
	// A frame whose payload is garbage: opcode 0xFF does not exist.
	hdr := make([]byte, 4, 8)
	binary.BigEndian.PutUint32(hdr, 4)
	if _, err := conn.Write(append(hdr, 0xFF, 0xFF, 0xFF, 0xFF)); err != nil {
		t.Fatal(err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("server answered a corrupt frame (err=%v), want EOF", err)
	}
}
