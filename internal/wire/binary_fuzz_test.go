package wire

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// fzReader derives protocol messages deterministically from fuzz input, so
// the coverage engine steers message shape through the byte stream.
type fzReader struct {
	b []byte
}

func (r *fzReader) u8() byte {
	if len(r.b) == 0 {
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *fzReader) i64() int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.u8())
	}
	return int64(v)
}

func (r *fzReader) str() string {
	n := int(r.u8()) % 16
	if n > len(r.b) {
		n = len(r.b)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	// JSON replaces invalid UTF-8 with U+FFFD, so identity across codecs
	// only holds for valid strings; sanitize rather than skip.
	return strings.ToValidUTF8(s, "�")
}

func (r *fzReader) value() WireValue {
	switch r.u8() % 5 {
	case 0:
		return WireValue{K: "n"}
	case 1:
		return WireValue{K: "i", I: r.i64()}
	case 2:
		f := math.Float64frombits(uint64(r.i64()))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = 0.5 // JSON cannot carry these; the engine never produces them
		}
		return WireValue{K: "f", F: f}
	case 3:
		return WireValue{K: "s", S: r.str()}
	default:
		return WireValue{K: "b", B: r.u8()%2 == 1}
	}
}

func (r *fzReader) row() []WireValue {
	n := int(r.u8()) % 5
	if n == 0 {
		return nil
	}
	out := make([]WireValue, n)
	for i := range out {
		out[i] = r.value()
	}
	return out
}

func (r *fzReader) strs() []string {
	n := int(r.u8()) % 4
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *fzReader) record() LogRecord {
	op := "INSERT"
	if r.u8()%2 == 1 {
		op = "DELETE"
	}
	return LogRecord{
		LSN:     r.i64(),
		TimeNS:  r.i64(),
		Table:   r.str(),
		Op:      op,
		Columns: r.strs(),
		Row:     r.row(),
		Trace:   r.i64(),
		Span:    r.i64(),
	}
}

var fzOps = []Op{OpQuery, OpLogSince, OpPing, OpPrepare, OpExecute, OpCloseStmt, OpSubscribeLog, OpHello}

// FuzzBinaryCodecRoundTrip checks three properties of the binary codec:
// encode→decode is the identity for Request, Response, and LogRecord; the
// binary and JSON codecs agree on every message (cross-version peers see
// the same values whichever framing negotiation picked); and the decoder
// never panics on arbitrary payload bytes.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("hello wire codec seed with some text and \xff bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := fzReader{b: data}

		req := Request{
			Op:          fzOps[int(r.u8())%len(fzOps)],
			Query:       r.str(),
			LSN:         r.i64(),
			StmtID:      r.i64(),
			Args:        r.row(),
			WireVersion: int(r.u8()),
		}
		buf, err := appendRequest(nil, &req)
		if err != nil {
			t.Fatalf("encode request: %v", err)
		}
		var reqBack Request
		if err := parseRequest(buf, &reqBack); err != nil {
			t.Fatalf("decode request: %v", err)
		}
		if !reflect.DeepEqual(req, reqBack) {
			t.Fatalf("request roundtrip:\n in  %+v\n out %+v", req, reqBack)
		}
		var reqJSON Request
		jb, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("json encode request: %v", err)
		}
		if err := json.Unmarshal(jb, &reqJSON); err != nil {
			t.Fatalf("json decode request: %v", err)
		}
		if !reflect.DeepEqual(reqJSON, reqBack) {
			t.Fatalf("codecs disagree on request:\n json   %+v\n binary %+v", reqJSON, reqBack)
		}

		nrows := int(r.u8()) % 3
		var rows [][]WireValue
		if nrows > 0 {
			rows = make([][]WireValue, nrows)
			for i := range rows {
				rows[i] = r.row()
			}
		}
		nrecs := int(r.u8()) % 3
		var recs []LogRecord
		if nrecs > 0 {
			recs = make([]LogRecord, nrecs)
			for i := range recs {
				recs[i] = r.record()
			}
		}
		resp := Response{
			Error:        r.str(),
			Columns:      r.strs(),
			Rows:         rows,
			RowsAffected: int(int32(r.i64())),
			Records:      recs,
			Truncated:    r.u8()%2 == 1,
			NextLSN:      r.i64(),
			FirstLSN:     r.i64(),
			StmtID:       r.i64(),
			NumArgs:      int(r.u8()),
			WireVersion:  int(r.u8()),
		}
		buf, err = appendResponse(nil, &resp)
		if err != nil {
			t.Fatalf("encode response: %v", err)
		}
		var respBack Response
		if err := parseResponse(buf, &respBack); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if !reflect.DeepEqual(resp, respBack) {
			t.Fatalf("response roundtrip:\n in  %+v\n out %+v", resp, respBack)
		}
		var respJSON Response
		jb, err = json.Marshal(resp)
		if err != nil {
			t.Fatalf("json encode response: %v", err)
		}
		if err := json.Unmarshal(jb, &respJSON); err != nil {
			t.Fatalf("json decode response: %v", err)
		}
		if !reflect.DeepEqual(respJSON, respBack) {
			t.Fatalf("codecs disagree on response:\n json   %+v\n binary %+v", respJSON, respBack)
		}

		// The decoder must reject or accept arbitrary bytes without panicking
		// (and without huge allocations — count() bounds them by frame size).
		var junkReq Request
		_ = parseRequest(data, &junkReq)
		var junkResp Response
		_ = parseResponse(data, &junkResp)
	})
}
