package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
)

func TestPrepareExecOverWire(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumArgs() != 1 {
		t.Fatalf("NumArgs = %d", st.NumArgs())
	}
	for k, want := range map[string]int64{"a": 1, "b": 2} {
		res, err := st.Exec([]mem.Value{mem.Str(k)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(want) {
			t.Fatalf("k=%s: %v", k, res.Rows)
		}
	}
	if srv.Prepares() != 1 || srv.Executes() != 2 {
		t.Fatalf("prepares=%d executes=%d", srv.Prepares(), srv.Executes())
	}
}

func TestPreparedDMLOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	ins, err := c.Prepare("INSERT INTO kv VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := ins.Exec([]mem.Value{mem.Str("c"), mem.Int(3)}); err != nil || res.RowsAffected != 1 {
		t.Fatalf("insert: %+v %v", res, err)
	}
	res, err := c.Query("SELECT v FROM kv WHERE k = 'c'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(3) {
		t.Fatalf("readback: %+v %v", res, err)
	}
}

func TestExecArityErrorOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(nil); err == nil {
		t.Fatal("zero args accepted")
	}
}

func TestCloseStmtReleasesHandle(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	id := st.id
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec([]mem.Value{mem.Str("a")}); err == nil {
		t.Fatal("exec after close accepted")
	}
	// The server really dropped the handle: a raw EXECUTE on it errors.
	resp, err := c.roundTrip(Request{Op: OpExecute, StmtID: id})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, ErrUnknownStmt) {
		t.Fatalf("server kept handle: %q", resp.Error)
	}
}

// A connection drop invalidates server-side handles; Exec must notice the
// new connection epoch and re-prepare transparently.
func TestExecAfterReconnectReprepares(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.BackoffBase = time.Millisecond
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	// Sever the connection as a network fault would, without arming backoff.
	c.mu.Lock()
	c.conn.Close()
	c.conn, c.cc = nil, connCodec{}
	c.mu.Unlock()
	res, err := st.Exec([]mem.Value{mem.Str("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(2) {
		t.Fatalf("rows: %v", res.Rows)
	}
	if srv.Prepares() != 2 {
		t.Fatalf("prepares = %d, want 2 (original + transparent re-prepare)", srv.Prepares())
	}
}

// A full server restart exercises the same path end-to-end: the old process's
// handles are gone, the client redials with backoff and re-prepares.
func TestExecAfterServerRestart(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`CREATE TABLE kv (k TEXT, v INT); INSERT INTO kv VALUES ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(db)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.BackoffBase = time.Millisecond
	c.MaxBackoff = 10 * time.Millisecond
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2 := NewServer(db)
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := st.Exec([]mem.Value{mem.Str("a")})
		if err == nil {
			if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(1) {
				t.Fatalf("rows: %v", res.Rows)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s2.Prepares() != 1 {
		t.Fatalf("restarted server prepares = %d, want 1", s2.Prepares())
	}
}

// oldServer emulates a peer that predates the prepare verbs: it answers
// query/ping and rejects everything else with the unknown-op error the real
// server's default branch produces.
func oldServer(t *testing.T, db *engine.Database) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := json.NewDecoder(conn)
				enc := json.NewEncoder(conn)
				for {
					var req Request
					if dec.Decode(&req) != nil {
						return
					}
					var resp Response
					switch req.Op {
					case OpPing:
					case OpQuery:
						res, err := db.ExecSQL(req.Query)
						if err != nil {
							resp.Error = err.Error()
						} else {
							resp.Columns, resp.RowsAffected = res.Columns, res.RowsAffected
							for _, r := range res.Rows {
								resp.Rows = append(resp.Rows, EncodeRow(r))
							}
						}
					default:
						resp.Error = fmt.Sprintf("wire: unknown op %q", req.Op)
					}
					if enc.Encode(resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// Against an old peer, Prepare succeeds (client-side) and Exec falls back to
// binding locally and sending plain text.
func TestPrepareFallsBackToTextOnOldServer(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`CREATE TABLE kv (k TEXT, v INT); INSERT INTO kv VALUES ('x', 42);`); err != nil {
		t.Fatal(err)
	}
	addr := oldServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.textOnly {
		t.Fatal("old server not detected")
	}
	res, err := st.Exec([]mem.Value{mem.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(42) {
		t.Fatalf("rows: %v", res.Rows)
	}
	// String args must render as quoted SQL literals on the text path.
	if _, err := st.Exec([]mem.Value{mem.Str("it's")}); err != nil {
		t.Fatalf("quoting: %v", err)
	}
}
