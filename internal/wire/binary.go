package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// Binary framing: after a successful HELLO exchange both sides switch from
// newline-delimited JSON to length-prefixed binary frames — a 4-byte
// big-endian payload length followed by the payload. The payload encodes
// Request/Response field-by-field in a fixed order: varints for integers
// (zigzag where the field is signed), uvarint-length-prefixed strings, one
// kind-tag byte per value mirroring WireValue's "n"/"i"/"f"/"s"/"b" kinds.
//
// There is deliberately no resynchronization: a corrupt length prefix or a
// payload that fails to decode leaves the stream position meaningless, so
// any decode error must drop the connection — exactly the JSON codec's
// desync rule. Frames are built in and read into pooled buffers, so the
// steady state (the LogFeed stream in particular) allocates only for the
// decoded values themselves, not per frame.

// BinaryVersion is the binary-framing protocol version this build speaks.
// HELLO carries it both ways; version 0 in a response means "JSON only".
const BinaryVersion = 1

// maxFrame caps a binary frame's payload. A length prefix beyond it is
// treated as stream corruption, not an allocation request.
const maxFrame = 64 << 20

// bufPool recycles frame buffers across connections and directions.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// Op <-> opcode tables. Every Op has a code so the codecs stay total; HELLO
// itself is only ever sent as JSON (it is what negotiates binary) but keeps
// a code for uniformity.
const (
	opcodeQuery = iota + 1
	opcodeLogSince
	opcodePing
	opcodePrepare
	opcodeExecute
	opcodeCloseStmt
	opcodeSubscribeLog
	opcodeHello
)

var opCodes = map[Op]byte{
	OpQuery:        opcodeQuery,
	OpLogSince:     opcodeLogSince,
	OpPing:         opcodePing,
	OpPrepare:      opcodePrepare,
	OpExecute:      opcodeExecute,
	OpCloseStmt:    opcodeCloseStmt,
	OpSubscribeLog: opcodeSubscribeLog,
	OpHello:        opcodeHello,
}

var opNames = func() map[byte]Op {
	m := make(map[byte]Op, len(opCodes))
	for op, c := range opCodes {
		m[c] = op
	}
	return m
}()

// Value kind tags.
const (
	tagNull = iota
	tagInt
	tagFloat
	tagString
	tagBool
)

// ---- encoding ----

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendWireValue(b []byte, v WireValue) []byte {
	switch v.K {
	case "i":
		b = append(b, tagInt)
		b = appendVarint(b, v.I)
	case "f":
		b = append(b, tagFloat)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case "s":
		b = append(b, tagString)
		b = appendString(b, v.S)
	case "b":
		b = append(b, tagBool)
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	default:
		b = append(b, tagNull)
	}
	return b
}

func appendWireRow(b []byte, row []WireValue) []byte {
	b = appendUvarint(b, uint64(len(row)))
	for _, v := range row {
		b = appendWireValue(b, v)
	}
	return b
}

func appendLogRecord(b []byte, r *LogRecord) []byte {
	b = appendVarint(b, r.LSN)
	b = appendVarint(b, r.TimeNS)
	b = appendString(b, r.Table)
	if r.Op == "DELETE" {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendStrings(b, r.Columns)
	b = appendWireRow(b, r.Row)
	b = appendVarint(b, r.Trace)
	b = appendVarint(b, r.Span)
	return b
}

func appendRequest(b []byte, req *Request) ([]byte, error) {
	code, ok := opCodes[req.Op]
	if !ok {
		return b, fmt.Errorf("wire: binary encode: unknown op %q", req.Op)
	}
	b = append(b, code)
	b = appendString(b, req.Query)
	b = appendVarint(b, req.LSN)
	b = appendVarint(b, req.StmtID)
	b = appendUvarint(b, uint64(req.WireVersion))
	b = appendWireRow(b, req.Args)
	return b, nil
}

func appendResponse(b []byte, resp *Response) ([]byte, error) {
	b = appendString(b, resp.Error)
	b = appendStrings(b, resp.Columns)
	b = appendUvarint(b, uint64(len(resp.Rows)))
	for _, row := range resp.Rows {
		b = appendWireRow(b, row)
	}
	b = appendVarint(b, int64(resp.RowsAffected))
	b = appendUvarint(b, uint64(len(resp.Records)))
	for i := range resp.Records {
		b = appendLogRecord(b, &resp.Records[i])
	}
	if resp.Truncated {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendVarint(b, resp.NextLSN)
	b = appendVarint(b, resp.FirstLSN)
	b = appendVarint(b, resp.StmtID)
	b = appendVarint(b, int64(resp.NumArgs))
	b = appendUvarint(b, uint64(resp.WireVersion))
	return b, nil
}

// ---- decoding ----

// breader is a cursor over one frame payload. Decoded strings are copied out
// (the payload buffer returns to the pool when the frame is done).
type breader struct {
	b []byte
}

func (r *breader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *breader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: binary decode: bad uvarint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *breader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: binary decode: bad varint")
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads an element count and sanity-checks it against the bytes left
// (every element takes at least one byte), so a corrupt frame cannot demand
// an enormous allocation before the decode fails.
func (r *breader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)) {
		return 0, fmt.Errorf("wire: binary decode: count %d exceeds frame", v)
	}
	return int(v), nil
}

func (r *breader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *breader) strings() ([]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *breader) value() (WireValue, error) {
	tag, err := r.u8()
	if err != nil {
		return WireValue{}, err
	}
	switch tag {
	case tagNull:
		return WireValue{K: "n"}, nil
	case tagInt:
		i, err := r.varint()
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{K: "i", I: i}, nil
	case tagFloat:
		if len(r.b) < 8 {
			return WireValue{}, io.ErrUnexpectedEOF
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
		r.b = r.b[8:]
		return WireValue{K: "f", F: f}, nil
	case tagString:
		s, err := r.str()
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{K: "s", S: s}, nil
	case tagBool:
		v, err := r.u8()
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{K: "b", B: v != 0}, nil
	default:
		return WireValue{}, fmt.Errorf("wire: binary decode: unknown value tag %d", tag)
	}
}

func (r *breader) row() ([]WireValue, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]WireValue, n)
	for i := range out {
		if out[i], err = r.value(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *breader) record() (LogRecord, error) {
	var rec LogRecord
	var err error
	if rec.LSN, err = r.varint(); err != nil {
		return rec, err
	}
	if rec.TimeNS, err = r.varint(); err != nil {
		return rec, err
	}
	if rec.Table, err = r.str(); err != nil {
		return rec, err
	}
	opb, err := r.u8()
	if err != nil {
		return rec, err
	}
	if opb == 1 {
		rec.Op = "DELETE"
	} else {
		rec.Op = "INSERT"
	}
	if rec.Columns, err = r.strings(); err != nil {
		return rec, err
	}
	if rec.Row, err = r.row(); err != nil {
		return rec, err
	}
	if rec.Trace, err = r.varint(); err != nil {
		return rec, err
	}
	if rec.Span, err = r.varint(); err != nil {
		return rec, err
	}
	return rec, nil
}

func parseRequest(b []byte, req *Request) error {
	r := breader{b: b}
	code, err := r.u8()
	if err != nil {
		return err
	}
	op, ok := opNames[code]
	if !ok {
		return fmt.Errorf("wire: binary decode: unknown opcode %d", code)
	}
	req.Op = op
	if req.Query, err = r.str(); err != nil {
		return err
	}
	if req.LSN, err = r.varint(); err != nil {
		return err
	}
	if req.StmtID, err = r.varint(); err != nil {
		return err
	}
	wv, err := r.uvarint()
	if err != nil {
		return err
	}
	req.WireVersion = int(wv)
	if req.Args, err = r.row(); err != nil {
		return err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: binary decode: %d trailing bytes in request", len(r.b))
	}
	return nil
}

func parseResponse(b []byte, resp *Response) error {
	r := breader{b: b}
	var err error
	if resp.Error, err = r.str(); err != nil {
		return err
	}
	if resp.Columns, err = r.strings(); err != nil {
		return err
	}
	nrows, err := r.count()
	if err != nil {
		return err
	}
	if nrows > 0 {
		resp.Rows = make([][]WireValue, nrows)
		for i := range resp.Rows {
			if resp.Rows[i], err = r.row(); err != nil {
				return err
			}
		}
	}
	ra, err := r.varint()
	if err != nil {
		return err
	}
	resp.RowsAffected = int(ra)
	nrecs, err := r.count()
	if err != nil {
		return err
	}
	if nrecs > 0 {
		resp.Records = make([]LogRecord, nrecs)
		for i := range resp.Records {
			if resp.Records[i], err = r.record(); err != nil {
				return err
			}
		}
	}
	tr, err := r.u8()
	if err != nil {
		return err
	}
	resp.Truncated = tr != 0
	if resp.NextLSN, err = r.varint(); err != nil {
		return err
	}
	if resp.FirstLSN, err = r.varint(); err != nil {
		return err
	}
	if resp.StmtID, err = r.varint(); err != nil {
		return err
	}
	na, err := r.varint()
	if err != nil {
		return err
	}
	resp.NumArgs = int(na)
	wv, err := r.uvarint()
	if err != nil {
		return err
	}
	resp.WireVersion = int(wv)
	if len(r.b) != 0 {
		return fmt.Errorf("wire: binary decode: %d trailing bytes in response", len(r.b))
	}
	return nil
}

// ---- framing ----

// binaryCodec frames binary payloads on one connection. Reads go through a
// bufio.Reader (seeded with whatever the JSON decoder had buffered at
// upgrade time); writes issue one conn.Write per frame from a pooled buffer.
type binaryCodec struct {
	r *bufio.Reader
	w io.Writer
}

func newBinaryCodec(r io.Reader, w io.Writer) *binaryCodec {
	return &binaryCodec{r: bufio.NewReaderSize(r, 32<<10), w: w}
}

func (c *binaryCodec) writeFrame(fill func([]byte) ([]byte, error)) error {
	bp := bufPool.Get().(*[]byte)
	b := append((*bp)[:0], 0, 0, 0, 0)
	b, err := fill(b)
	if err == nil {
		n := len(b) - 4
		if n > maxFrame {
			err = fmt.Errorf("wire: frame too large (%d bytes)", n)
		} else {
			binary.BigEndian.PutUint32(b[:4], uint32(n))
			_, err = c.w.Write(b)
		}
	}
	*bp = b
	bufPool.Put(bp)
	return err
}

func (c *binaryCodec) readFrame() (*[]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		bufPool.Put(bp)
		return nil, nil, err
	}
	return bp, buf, nil
}

func (c *binaryCodec) writeRequest(req *Request) error {
	return c.writeFrame(func(b []byte) ([]byte, error) { return appendRequest(b, req) })
}

func (c *binaryCodec) writeResponse(resp *Response) error {
	return c.writeFrame(func(b []byte) ([]byte, error) { return appendResponse(b, resp) })
}

func (c *binaryCodec) readRequest(req *Request) error {
	bp, buf, err := c.readFrame()
	if err != nil {
		return err
	}
	err = parseRequest(buf, req)
	bufPool.Put(bp)
	return err
}

func (c *binaryCodec) readResponse(resp *Response) error {
	bp, buf, err := c.readFrame()
	if err != nil {
		return err
	}
	err = parseResponse(buf, resp)
	bufPool.Put(bp)
	return err
}

// connCodec is the codec state bound to one connection: JSON framing from
// the first byte, swapped for the binary codec after a successful HELLO.
// Both sides of the protocol share it — a client reads responses and writes
// requests; a server does the reverse.
type connCodec struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	bin  *binaryCodec
}

func newConnCodec(conn net.Conn) connCodec {
	return connCodec{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

// upgrade switches the connection to binary framing. Bytes the JSON decoder
// had already buffered belong to the binary stream now, so they seed the
// binary reader — minus any leading whitespace, which is the JSON framing's
// inter-value separator (json.Encoder's trailing newline stays in the peer
// decoder's buffer after the HELLO frame is decoded).
func (cc *connCodec) upgrade() {
	rest, _ := io.ReadAll(cc.dec.Buffered())
	rest = bytes.TrimLeft(rest, " \t\r\n")
	cc.bin = newBinaryCodec(io.MultiReader(bytes.NewReader(rest), cc.conn), cc.conn)
	cc.dec, cc.enc = nil, nil
}

func (cc *connCodec) binary() bool { return cc.bin != nil }

func (cc *connCodec) writeRequest(req *Request) error {
	if cc.bin != nil {
		return cc.bin.writeRequest(req)
	}
	return cc.enc.Encode(req)
}

func (cc *connCodec) readRequest(req *Request) error {
	if cc.bin != nil {
		return cc.bin.readRequest(req)
	}
	return cc.dec.Decode(req)
}

func (cc *connCodec) writeResponse(resp *Response) error {
	if cc.bin != nil {
		return cc.bin.writeResponse(resp)
	}
	return cc.enc.Encode(resp)
}

func (cc *connCodec) readResponse(resp *Response) error {
	if cc.bin != nil {
		return cc.bin.readResponse(resp)
	}
	return cc.dec.Decode(resp)
}
