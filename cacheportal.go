// Package cacheportal is the public API of the CachePortal reproduction
// (Candan, Li, Luo, Hsiung, Agrawal: "Enabling Dynamic Content Caching for
// Database-Driven Web Sites", SIGMOD 2001).
//
// CachePortal makes dynamically generated web pages cacheable by
// invalidating them when the database rows they depend on change. It is
// non-invasive: a sniffer correlates the HTTP request log with the query
// log into a QI/URL map, and an invalidator interprets that map against the
// database update log, issuing polling queries where a delta tuple alone
// cannot decide impact, and sending `Cache-Control: eject` messages to the
// web caches for affected pages.
//
// Three entry points:
//
//   - New builds a Portal (sniffer + invalidator) over logs you wire
//     yourself — for deployments where the web server, application server,
//     database and cache are separate processes.
//   - NewSite assembles a complete Configuration III site in one process —
//     in-memory DBMS served over TCP, servlet container, caching reverse
//     proxy, and a running Portal — for examples, tests and experiments.
//   - The internal packages (engine, webcache, datacache, balancer, simnet,
//     configs, …) implement every substrate and the paper's evaluation
//     harness; see DESIGN.md.
package cacheportal

import (
	"repro/internal/appserver"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/fragment"
	"repro/internal/invalidator"
	"repro/internal/sniffer"
)

// Re-exported configuration and component types. The aliases make the root
// package a complete vocabulary for assembling a deployment without
// importing internal packages directly.
type (
	// Options configures a Portal; see core.Options.
	Options = core.Options
	// Portal is a running sniffer + invalidator pair.
	Portal = core.Portal
	// Rule is an administrator invalidation policy (query- or
	// request-based).
	Rule = invalidator.Rule
	// DiscoveryThresholds drive automatic policy discovery.
	DiscoveryThresholds = invalidator.DiscoveryThresholds
	// Report summarizes one invalidation cycle.
	Report = invalidator.Report
	// Advice is a maintained-index recommendation.
	Advice = invalidator.Advice
	// MapperMode selects how queries are attributed to requests.
	MapperMode = sniffer.MapperMode
	// Meta describes a servlet registration (name, key parameters,
	// temporal sensitivity).
	Meta = appserver.Meta
	// KeySpec names the GET/POST/cookie parameters forming a page's cache
	// key.
	KeySpec = appserver.KeySpec
	// Page is a servlet's response.
	Page = appserver.Page
	// Context carries one request through a servlet.
	Context = appserver.Context
	// Fragment is one independently cacheable unit of a fragmented page.
	Fragment = appserver.Fragment
	// ServletFunc adapts a function to the servlet interface.
	ServletFunc = appserver.ServletFunc
	// QueryLog is the JDBC-wrapper query log.
	QueryLog = driver.QueryLog
	// RequestLog is the servlet-wrapper request log.
	RequestLog = appserver.RequestLog
)

// Mapper modes.
const (
	// IntervalOnly attributes queries to requests purely by timestamp
	// containment (the paper's §3.3 rule).
	IntervalOnly = sniffer.IntervalOnly
	// LeaseAffine additionally requires connection-lease agreement.
	LeaseAffine = sniffer.LeaseAffine
)

// Policy rule actions.
const (
	// NeverCache marks matching queries/servlets non-cacheable.
	NeverCache = invalidator.ActionNeverCache
	// AlwaysCache pins matches cacheable.
	AlwaysCache = invalidator.ActionAlwaysCache
)

// New builds a Portal over externally wired logs. See core.New.
func New(opts Options) (*Portal, error) { return core.New(opts) }

// FragmentMarker returns the include marker naming a fragment inside a
// page template (see Page.Template and Context.Fragment).
func FragmentMarker(name string) string { return fragment.Marker(name) }
