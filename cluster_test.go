package cacheportal

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/demoapp"
)

// clusterDemoSite is demoSite over a consistent-hash cache cluster of n
// nodes (eject-stream invalidation, no shard manager — the deterministic
// topology the equivalence test wants).
func clusterDemoSite(t testing.TB, n int) *Site {
	t.Helper()
	defs := append(demoapp.Servlets("db"), demoapp.PersonalizedServlets("db")...)
	servlets := make([]ServletDef, 0, len(defs))
	for _, d := range defs {
		servlets = append(servlets, ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := NewSite(SiteConfig{
		Schema:   demoapp.SchemaSQL(100, 400, 1),
		Servlets: servlets,
		Interval: 50 * time.Millisecond,
		Cluster:  ClusterConfig{CacheNodes: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// carClusterSite is carSite over a cache cluster with the given topology.
func carClusterSite(t testing.TB, cc ClusterConfig) *Site {
	t.Helper()
	site, err := NewSite(SiteConfig{
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('M3', 19), ('Avalon', 26);
		`,
		Servlets: []ServletDef{
			{
				Meta: Meta{Name: "under", Keys: KeySpec{Get: []string{"price"}}},
				Handler: func(ctx *Context) (*Page, error) {
					lease, err := ctx.Lease("db")
					if err != nil {
						return nil, err
					}
					defer lease.Release()
					res, err := lease.Query(
						"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
							"WHERE Car.model = Mileage.model AND Car.price < " + ctx.Param("price"))
					if err != nil {
						return nil, err
					}
					var b strings.Builder
					for _, r := range res.Rows {
						fmt.Fprintf(&b, "%s %s %s %s\n", r[0], r[1], r[2], r[3])
					}
					return &Page{Body: []byte(b.String())}, nil
				},
			},
		},
		Interval: time.Hour, // cycles driven by hand
		Cluster:  cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// ownerIndex resolves which cache node (by Caches index) owns a canonical
// cache key under the site's current map.
func ownerIndex(t *testing.T, site *Site, key string) int {
	t.Helper()
	m := site.ClusterView.Map()
	owners := m.Owners(m.Slot(cluster.RouteKey(key)))
	if len(owners) == 0 {
		t.Fatalf("no owner for key %q", key)
	}
	i, err := strconv.Atoi(strings.TrimPrefix(owners[0].ID, "node"))
	if err != nil {
		t.Fatalf("node id %q: %v", owners[0].ID, err)
	}
	return i
}

// TestClusterEquivalence is the distributed tier's core property: a 3-node
// consistent-hash cluster — hash-routed front balancer, per-node caches,
// eject-stream invalidation — serves byte-identical responses to the
// single-cache site, across servlets, users, update rounds, and
// concurrency levels.
func TestClusterEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			clustered := clusterDemoSite(t, 3)
			single := demoSite(t, false)
			rng := rand.New(rand.NewSource(int64(workers)))
			nextStmt := demoapp.UpdateStatement()

			rounds := 3
			perWorker := 12
			if testing.Short() {
				rounds, perWorker = 2, 6
			}
			for round := 0; round < rounds; round++ {
				if round > 0 {
					// Identical backend updates on both sites, one
					// synchronous cycle each, and — on the cluster — wait
					// for every node's stream consumer to apply the ejects
					// before requests resume.
					for i := 0; i < 3; i++ {
						stmt := nextStmt(rng)
						if err := clustered.Exec(stmt); err != nil {
							t.Fatal(err)
						}
						if err := single.Exec(stmt); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := clustered.Portal.Cycle(); err != nil {
						t.Fatal(err)
					}
					if _, err := single.Portal.Cycle(); err != nil {
						t.Fatal(err)
					}
					if !clustered.WaitEjectStream(5 * time.Second) {
						t.Fatal("eject stream did not quiesce")
					}
				}
				var wg sync.WaitGroup
				errs := make(chan string, workers)
				for w := 0; w < workers; w++ {
					seed := int64(round*100 + w)
					wg.Add(1)
					go func() {
						defer wg.Done()
						wrng := rand.New(rand.NewSource(seed))
						for i := 0; i < perWorker; i++ {
							servlet := []string{"light", "medium", "heavy", "home"}[wrng.Intn(4)]
							cat := wrng.Intn(demoapp.JoinValues)
							user := ""
							if servlet == "home" {
								user = fmt.Sprintf("u%d", wrng.Intn(3))
							}
							path := fmt.Sprintf("/%s?cat=%d", servlet, cat)
							want, _ := fetchAs(t, single.CacheURL+path, user)
							got, _ := fetchAs(t, clustered.CacheURL+path, user)
							if got != want {
								errs <- fmt.Sprintf("%s user=%q: cluster served %q, single %q", path, user, got, want)
								return
							}
						}
					}()
				}
				wg.Wait()
				close(errs)
				for e := range errs {
					t.Fatal(e)
				}
			}
		})
	}
}

// TestClusterEntriesLandOnOwners: the hash-routing front balancer and the
// per-node placement agree — after a spread of requests, every cached
// entry lives on a node that owns its slot.
func TestClusterEntriesLandOnOwners(t *testing.T) {
	site := clusterDemoSite(t, 3)
	for cat := 0; cat < 8; cat++ {
		fetchAs(t, site.CacheURL+fmt.Sprintf("/light?cat=%d", cat), "")
		fetchAs(t, site.CacheURL+fmt.Sprintf("/medium?cat=%d", cat), "")
	}
	m := site.ClusterView.Map()
	for i, cache := range site.Caches {
		id := fmt.Sprintf("node%d", i)
		for _, key := range cache.Keys() {
			if !m.IsOwner(m.Slot(cluster.RouteKey(key)), id) {
				t.Fatalf("entry %q cached on %s which does not own its slot", key, id)
			}
		}
	}
}

// TestClusterNodeDropRejoinCatchesUp is the chaos case: one cache node's
// eject-stream consumer dies mid-burst. While it is down the node serves
// stale (bounded by its outage); on rejoin the consumer resumes from its
// cursor, applies every missed eject, and no staleness survives.
func TestClusterNodeDropRejoinCatchesUp(t *testing.T) {
	site := carClusterSite(t, ClusterConfig{CacheNodes: 3})
	url := site.CacheURL + "/under?price=20000"

	body, _, key := fetch(t, url)
	if !strings.Contains(body, "Corolla") {
		t.Fatalf("seed body %q", body)
	}
	idx := ownerIndex(t, site, key)
	if _, present := site.Caches[idx].Peek(key); !present {
		t.Fatalf("warm entry not on its owner node%d", idx)
	}
	cursorBefore := site.EjectConsumerCursor(idx)

	// The owner drops off the invalidation feed mid-burst.
	site.StopEjectConsumer(idx)
	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	// More of the burst: unrelated updates that also produce cycles.
	if err := site.Exec("INSERT INTO Car VALUES ('Porsche', '911', 120000)"); err != nil {
		t.Fatal(err)
	}
	head := site.EjectLog.NextSeq()
	deadline := time.Now().Add(5 * time.Second)
	for site.EjectLog.NextSeq() == head {
		if time.Now().After(deadline) {
			t.Fatal("update produced no eject record")
		}
		if _, err := site.Portal.Cycle(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !site.WaitEjectStream(5 * time.Second) {
		t.Fatal("running consumers did not quiesce")
	}
	// The downed node missed the eject: its copy is stale — the bounded
	// window the stream's cursor resume is about to close.
	if _, present := site.Caches[idx].Peek(key); !present {
		t.Fatal("entry vanished from the downed node before it rejoined")
	}

	// Rejoin: the consumer resumes from its saved cursor and catches up.
	site.ResumeEjectConsumer(idx)
	if !site.WaitEjectStream(5 * time.Second) {
		t.Fatal("rejoined consumer did not catch up")
	}
	if _, present := site.Caches[idx].Peek(key); present {
		t.Fatal("stale entry survived the rejoin — cursor resume lost the eject")
	}
	if site.EjectConsumerCursor(idx) <= cursorBefore {
		t.Fatalf("cursor did not advance across the outage (%d -> %d)",
			cursorBefore, site.EjectConsumerCursor(idx))
	}

	// The refetched page is fresh.
	body, _, _ = fetch(t, url)
	if !strings.Contains(body, "Avalon") {
		t.Fatalf("permanently stale after rejoin: %q", body)
	}
}

// TestClusterTruncationClearsRejoiningNode: a node that lags past the
// eject log's retention cannot catch up precisely — the stream signals
// truncation in-band and the rejoining consumer clears its whole cache,
// trading hit ratio for guaranteed freshness.
func TestClusterTruncationClearsRejoiningNode(t *testing.T) {
	site := carClusterSite(t, ClusterConfig{CacheNodes: 3, EjectRetain: 4})
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)
	idx := ownerIndex(t, site, key)

	site.StopEjectConsumer(idx)
	// While the node is down the stream turns over more records than it
	// retains: the node's cursor falls off the log.
	for i := 0; i < 10; i++ {
		site.EjectLog.Append([]string{fmt.Sprintf("burst/other-page?id=%d", i)})
	}
	if !site.WaitEjectStream(5 * time.Second) {
		t.Fatal("running consumers did not drain the burst")
	}

	site.ResumeEjectConsumer(idx)
	if !site.WaitEjectStream(5 * time.Second) {
		t.Fatal("rejoined consumer did not recover")
	}
	if site.consumers[idx].c.Cleared() == 0 {
		t.Fatal("truncated consumer never cleared its cache")
	}
	if _, present := site.Caches[idx].Peek(key); present {
		t.Fatal("entry survived a truncation clear")
	}
	// The node is cold but correct: the next fetch repopulates it.
	body, _, _ := fetch(t, url)
	if !strings.Contains(body, "Corolla") {
		t.Fatalf("post-clear body %q", body)
	}
}

// TestClusterManagerReplicatesUnderFlashCrowd: a traffic spike on one page
// makes the shard manager grow that slot's replica set; the new map
// reaches every node through /debug/cluster and the version only moves
// forward.
func TestClusterManagerReplicatesUnderFlashCrowd(t *testing.T) {
	site := carClusterSite(t, ClusterConfig{
		CacheNodes:      3,
		Manager:         true,
		ManagerInterval: 20 * time.Millisecond,
		MinLoad:         8,
	})
	url := site.CacheURL + "/under?price=20000"

	// The flash crowd: one page takes all the traffic.
	for i := 0; i < 200; i++ {
		fetch(t, url)
	}
	deadline := time.Now().Add(5 * time.Second)
	for site.ClusterView.Map().ReplicaCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never replicated the hot slot")
		}
		fetch(t, url)
	}
	m := site.ClusterView.Map()
	if m.Version < 2 {
		t.Fatalf("map version %d after a replica move", m.Version)
	}
	// The install propagated to the nodes themselves.
	deadline = time.Now().Add(5 * time.Second)
	for {
		allCurrent := true
		for _, p := range site.Proxies {
			if v := p.Cluster.View.Map().Version; v < m.Version {
				allCurrent = false
			}
		}
		if allCurrent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new map never reached every node")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Traffic keeps being answered correctly on the replicated topology.
	body, _, _ := fetch(t, url)
	if !strings.Contains(body, "Corolla") {
		t.Fatalf("post-replication body %q", body)
	}
}

// TestClusterPushEjectsEquivalence: routed HTTP push ejects (the A/B
// alternative to the stream) also keep the cluster fresh end to end.
func TestClusterPushEjectsEquivalence(t *testing.T) {
	site := carClusterSite(t, ClusterConfig{CacheNodes: 3, PushEjects: true})
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)
	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("routed push eject never invalidated the page")
	}
	body, _, _ := fetch(t, url)
	if !strings.Contains(body, "Avalon") {
		t.Fatalf("stale after routed eject: %q", body)
	}
}
