GO ?= go

.PHONY: all build test race bench bench-parallel bench-json clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the parallel invalidation pipeline
# and the sharded web cache must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Parallel-scaling benchmarks: invalidator worker sweep + sharded cache.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded' -benchtime 2s .

# Re-measure the invalidator scaling sweep and refresh BENCH_invalidator.json.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded|BenchmarkInvalidatorCycle$$|BenchmarkWebCache$$' -benchtime 2s . \
		| $(GO) run ./cmd/benchjson -out BENCH_invalidator.json

clean:
	$(GO) clean ./...
