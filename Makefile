GO ?= go

.PHONY: all build test race chaos soak-feed bench bench-parallel bench-json bench-compare bench-registry bench-wire bench-fragment bench-cluster cluster-smoke trace-smoke fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the parallel invalidation pipeline
# and the sharded web cache must stay race-free.
race:
	$(GO) test -race ./...

# Fault-tolerance suite under the race detector: the chaos integration
# tests (full pipeline under injected faults), the invalidator's recovery
# regression tests, and the faults/wire fault-path tests.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/backoff/
	$(GO) test -race -run 'Chaos|Recover|Truncation|Pending|Breaker|Deadline|Backoff' . ./internal/wire/ ./internal/invalidator/

# Event-driven endurance run under the race detector: SOAK_SECONDS of
# sustained stream-driven invalidation on a live site, then a goroutine-leak
# check against the pre-site baseline.
SOAK_SECONDS ?= 30
soak-feed:
	SOAK_FEED=1 SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -run TestSoakFeed -v -timeout 10m .

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Parallel-scaling benchmarks: invalidator worker sweep + sharded cache.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded' -benchtime 2s .

# Re-measure the invalidator scaling sweep and refresh BENCH_invalidator.json,
# embedding the live pipeline's staleness/hit-ratio snapshot under "obs".
# BenchmarkCommitToEject is the freshness acceptance check: the feed
# sub-benchmark's p95-staleness-ms must come in below the 100ms cycle
# interval that bounds the interval sub-benchmark.
bench-json:
	$(GO) run ./cmd/experiment -staleness 30 -obs-out .obs-staleness.json
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded|BenchmarkInvalidatorCycle$$|BenchmarkWebCache$$|BenchmarkCommitToEject' -benchtime 2s . \
		| $(GO) run ./cmd/benchjson -obs .obs-staleness.json -out BENCH_invalidator.json
	rm -f .obs-staleness.json

# Prepared-vs-text poll path comparison, merged into BENCH_invalidator.json
# alongside the scaling sweep. The prepared sub-benchmark's stmt-hit-ratio
# metric is the acceptance check that polling re-parses nothing.
bench-compare:
	$(GO) test -run xxx -bench 'BenchmarkPollPath|BenchmarkInvalidatorCycleParallel|BenchmarkCommitToEject' -benchtime 2s . \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json

# Predicate-index scaling sweep: per-update analysis cost at 10k/100k/1M
# registered instances, index probe vs registry scan, merged into
# BENCH_invalidator.json next to the other sweeps. -benchtime 5x keeps the
# 1M-instance scan cells tractable; the acceptance check is mode=index
# beating mode=scan by >=10x at insts=1000000. The registry enumeration
# micro-benchmark rides along (its allocs/op contract is asserted by
# TestTypesForTableIntoZeroAlloc / TestInstancesOfIntoZeroAlloc).
bench-registry:
	$(GO) test -run xxx -bench 'BenchmarkRegistryScale|BenchmarkRegistryEnumeration' -benchtime 5x -benchmem -timeout 60m . ./internal/invalidator/ \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json

# Wire codec and poll-index comparison, merged into BENCH_invalidator.json.
# Three acceptance checks: BenchmarkWireLogSince codec=binary must beat
# codec=json on the 256-record LogSince hot path, BenchmarkHighFanoutPoll
# mode=indexed must beat mode=scan at 100k rows, and BenchmarkCommitToEject
# feed (binary) p95-staleness-ms must come in at or below feed-json.
bench-wire:
	$(GO) test -run xxx -bench 'BenchmarkWireLogSince|BenchmarkCommitToEject' -benchtime 2s . ./internal/wire/ \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json
	$(GO) test -run xxx -bench BenchmarkHighFanoutPoll -benchtime 2s ./internal/engine/ \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json

# Fragment-level caching benchmarks, merged into BENCH_invalidator.json:
# the edge-assembly splice cost at 1/4/16 fragments, and the page-vs-fragment
# hit ratio on the personalized home page (12 users x 5 categories, cold-start
# sweep per iteration). The acceptance check is mode=fragment's hit-ratio
# beating mode=page's, mirroring TestFragmentHitRatioBeatsPageMode.
bench-fragment:
	$(GO) test -run xxx -bench 'BenchmarkFragmentAssembly|BenchmarkFragmentHitRatio' -benchtime 2s . \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json

# Distributed cache tier smoke under the race detector: the cluster
# package's ring/stream/manager suites, the webcache forwarding and
# balancer hash-policy tests, and the top-level 3-node in-process cluster
# tests — equivalence vs single-node, the node-drop/rejoin chaos case, and
# the manager's flash-crowd replication.
cluster-smoke:
	$(GO) test -race -short ./internal/cluster/
	$(GO) test -race -short -run 'Cluster|Reprobe|ConsistentHash|Resubscribe|Routed' -count=1 . ./internal/webcache/ ./internal/balancer/ ./internal/invalidator/ ./internal/feed/

# Flash-crowd comparison on the 3-node cluster behind a round-robin front
# tier, merged into BENCH_invalidator.json: static single-owner placement
# vs the adaptive shard manager replicating the hot slot. Each mode
# reports median-of-runs p50/p95 latency, the forwarded-request fraction
# (the structural cost replication halves: 2/3 -> 1/3), per-node hit
# ratios, and the manager's replica-migration count. The acceptance check
# is mode=adaptive's p95-ms (and forwarded-per-req) coming in below
# mode=static's.
bench-cluster:
	$(GO) test -run xxx -bench BenchmarkClusterFlashCrowd -benchtime 7x -timeout 30m . \
		| $(GO) run ./cmd/benchjson -merge -out BENCH_invalidator.json

# End-to-end tracing smoke under the race detector: the trace package's own
# suite, then the pipeline assertions — every committed update on a live
# feed-mode site must yield a complete engine.commit→…→webcache.eject span
# chain, a forced-sample chaos trace must carry the retry/breaker story
# behind the staleness exemplar, and HTTP ejects must propagate contexts to
# the remote cache's tracer.
trace-smoke:
	$(GO) test -race ./internal/trace/
	$(GO) test -race -run 'TestTraceSmoke|TestTraceChaosExemplar|TestHTTPEjectorPropagatesTraceContexts' -v . ./internal/invalidator/

# Coverage-guided fuzzing: the SQL parser/printer round-trip and the binary
# wire codec (encode/decode identity plus JSON cross-codec agreement).
# FUZZTIME bounds each target (CI smoke uses 30s; leave it running longer
# locally). `go test -fuzz` takes one target per invocation, hence two lines.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sqlparser/ -fuzz FuzzParseRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -fuzz FuzzBinaryCodecRoundTrip -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
