GO ?= go

.PHONY: all build test race bench bench-parallel bench-json clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the parallel invalidation pipeline
# and the sharded web cache must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Parallel-scaling benchmarks: invalidator worker sweep + sharded cache.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded' -benchtime 2s .

# Re-measure the invalidator scaling sweep and refresh BENCH_invalidator.json,
# embedding the live pipeline's staleness/hit-ratio snapshot under "obs".
bench-json:
	$(GO) run ./cmd/experiment -staleness 30 -obs-out .obs-staleness.json
	$(GO) test -run xxx -bench 'BenchmarkInvalidatorCycleParallel|BenchmarkWebCacheSharded|BenchmarkInvalidatorCycle$$|BenchmarkWebCache$$' -benchtime 2s . \
		| $(GO) run ./cmd/benchjson -obs .obs-staleness.json -out BENCH_invalidator.json
	rm -f .obs-staleness.json

clean:
	$(GO) clean ./...
