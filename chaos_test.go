package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/demoapp"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/invalidator"
	"repro/internal/logexport"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/webcache"
	"repro/internal/wire"
)

// TestChaosPipelineConverges is the chaos integration test capping the fault
// tolerance work: the full Figure-7 topology (DBMS, app server with log
// export, web cache, remote invalidator) with a seeded fault injector on
// every invalidation edge — the log-mirror HTTP transport, the update-log
// puller, and the HTTP ejector. Faults delay, error, drop, and black-hole
// operations at random; the assertion is the paper's §4.2.4 guarantee: no
// stale page survives — every update's page is ejected within a bounded
// number of cycles, and once the faults heal the pipeline is fully caught
// up. Reproducible from the injector seed.
func TestChaosPipelineConverges(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:          7,
		ErrorRate:     0.20,
		DropRate:      0.10,
		BlackholeRate: 0.05,
		DelayRate:     0.20,
		Delay:         2 * time.Millisecond,
		BlackholeHold: 50 * time.Millisecond,
	})
	inj.Disable() // boot cleanly; chaos starts once the site is warm
	reg := obs.NewRegistry()
	inj.Instrument(reg, "")

	// Machine 1: the DBMS.
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
		CREATE TABLE Mileage (model TEXT, EPA INT);
		INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('BMW', 'M3', 70000);
		INSERT INTO Mileage VALUES ('Corolla', 33), ('M3', 19), ('Avalon', 26);
	`); err != nil {
		t.Fatal(err)
	}
	dbSrv := wire.NewServer(db)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	// Machine 2: the application server with HTTP log export.
	qlog := driver.NewQueryLog(0)
	pool, err := driver.NewPool(driver.NewLoggingDriver(driver.NetDriver{}, qlog), dbAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sources := driver.NewRegistry()
	sources.Bind("db", pool)
	rlog := appserver.NewRequestLog(0)
	app := appserver.NewServer(sources, rlog)
	app.MustRegister(appserver.Meta{Name: "over", Keys: appserver.KeySpec{Get: []string{"min"}}},
		appserver.ServletFunc(func(ctx *appserver.Context) (*appserver.Page, error) {
			lease, err := ctx.Lease("db")
			if err != nil {
				return nil, err
			}
			defer lease.Release()
			res, err := lease.Query(
				"SELECT Car.model, Mileage.EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > " + ctx.Param("min"))
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			for _, r := range res.Rows {
				fmt.Fprintf(&b, "%s %s\n", r[0], r[1])
			}
			return &appserver.Page{Body: []byte(b.String())}, nil
		}))
	exporter := &logexport.Exporter{Requests: rlog, Queries: qlog}
	appHTTP := httptest.NewServer(exporter.Wrap(app))
	defer appHTTP.Close()

	// Machine 3: the web cache.
	cache := webcache.NewCache(0)
	cacheHTTP := httptest.NewServer(webcache.NewProxy(appHTTP.URL, cache))
	defer cacheHTTP.Close()

	// Machine 4: the invalidator, every edge wrapped with the injector —
	// faulty HTTP transport under the log mirror, faulty puller over the
	// wire client, faulty ejector over the HTTP ejector.
	mirror := logexport.NewMirror(appHTTP.URL)
	mirror.Client = &http.Client{
		Transport: faults.WrapTransport(nil, inj),
		Timeout:   2 * time.Second,
	}
	qiMap := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(mirror.Requests, mirror.Queries, qiMap)
	logClient, err := wire.Dial(dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer logClient.Close()
	pollConn, err := driver.NetDriver{}.Connect(dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pollConn.Close()
	inv := invalidator.New(invalidator.Config{
		Map:    qiMap,
		Mapper: mapper,
		Puller: faults.Puller{Next: invalidator.WireLogPuller{Client: logClient}, Inj: inj},
		Poller: pollConn,
		Ejector: faults.Ejector{
			Next: invalidator.HTTPEjector{CacheURLs: []string{cacheHTTP.URL}},
			Inj:  inj,
		},
		Obs: reg,
	})

	// cycle is fault-tolerant by construction: a failed sync or cycle is
	// exactly what the chaos is for, so errors are tolerated, not fatal.
	// Like invalidatord, a cycle never runs against a failed log fetch:
	// consuming update records while blind to the requests that cached the
	// affected pages would be unsound, faults or no faults.
	cycle := func() {
		if _, err := mirror.Sync(); err != nil {
			return
		}
		inv.Cycle()
	}
	cycle() // swallow seed-data log records

	get := func() (key, hit string) {
		resp, err := http.Get(cacheHTTP.URL + "/over?min=20000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get("X-Cacheportal-Key"), resp.Header.Get(webcache.HitHeader)
	}

	key, _ := get()
	if key == "" {
		t.Fatal("no cache key on first response")
	}
	cycle() // ingest the mapping cleanly

	inj.Enable()
	const rounds = 6
	price := 25000
	for r := 0; r < rounds; r++ {
		// (Re-)warm the page; under chaos the mapping may be re-ingested on
		// a later cycle, which is fine.
		if k, _ := get(); k != "" {
			key = k
		}
		// A relevant update: the new Avalon passes the price predicate and
		// joins with Mileage, so the cached page is stale from here on.
		price++
		if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO Car VALUES ('Toyota', 'Avalon', %d)", price)); err != nil {
			t.Fatal(err)
		}
		// §4.2.4 under faults: the eject must land within a bounded number
		// of cycles — delayed by retries and backoff, never lost.
		gone := false
		for c := 0; c < 400; c++ {
			cycle()
			if _, cached := cache.Peek(key); !cached {
				gone = true
				break
			}
		}
		if !gone {
			t.Fatalf("round %d: stale page %s survived 400 chaos cycles (permanent staleness)", r, key)
		}
	}

	// Heal and verify the pipeline is clean: a final update round converges
	// within a handful of cycles.
	inj.Heal()
	if k, _ := get(); k != "" {
		key = k
	}
	price++
	if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO Car VALUES ('Toyota', 'Avalon', %d)", price)); err != nil {
		t.Fatal(err)
	}
	gone := false
	for c := 0; c < 20; c++ {
		cycle()
		if _, cached := cache.Peek(key); !cached {
			gone = true
			break
		}
	}
	if !gone {
		t.Fatal("healed pipeline did not converge")
	}

	// The chaos must actually have happened for this test to mean anything.
	snap := reg.Snapshot()
	if snap.Counters["faults.injected_total"] == 0 {
		t.Fatal("no faults were injected")
	}
	t.Logf("chaos run: %d faults (%d errors, %d drops, %d blackholes, %d delays), %d cycles, %d cycle errors, %d eject errors, %d breaker trips",
		snap.Counters["faults.injected_total"], snap.Counters["faults.errors_total"],
		snap.Counters["faults.drops_total"], snap.Counters["faults.blackholes_total"],
		snap.Counters["faults.delays_total"], snap.Counters["invalidator.cycles_total"],
		snap.Counters["invalidator.cycle_errors_total"], snap.Counters["invalidator.eject_errors_total"],
		snap.Counters["invalidator.breaker_trips_total"])
}

// TestSiteChaos exercises the packaged chaos wiring (SiteConfig.Chaos): the
// single-process Configuration III site with a fault injector on its
// invalidation path still keeps every page fresh.
func TestSiteChaos(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:      3,
		ErrorRate: 0.25,
		DropRate:  0.10,
		DelayRate: 0.20,
		Delay:     2 * time.Millisecond,
	})
	inj.Disable()
	var defs []ServletDef
	for _, d := range demoapp.Servlets("db") {
		defs = append(defs, ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := NewSite(SiteConfig{
		Schema:   demoapp.DefaultSchemaSQL(),
		Servlets: defs,
		Interval: 20 * time.Millisecond,
		Chaos:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Cacheportal-Key")
	}

	inj.Enable()
	nextID := 70_000_000
	for r := 0; r < 3; r++ {
		cat := r % demoapp.JoinValues
		key := get(fmt.Sprintf("%s/light?cat=%d", site.CacheURL, cat))
		nextID++
		if err := site.Exec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d, 'x')", nextID, cat)); err != nil {
			t.Fatal(err)
		}
		if !site.WaitForInvalidation(key, 30*time.Second) {
			t.Fatalf("round %d: page %s never invalidated under chaos", r, key)
		}
	}
	inj.Heal()
	if got := site.Obs.Snapshot().Counters["faults.injected_total"]; got == 0 {
		t.Fatal("no faults were injected")
	}
}

// TestChaosFeedResumesFromCursor caps the feed work's fault story: the
// mirror's long-poll pump (Mirror.Run) under a chaotic transport — requests
// erroring, dropping mid-stream, and delayed at random — must resume from its
// cursor across every failure: once healed, both mirrored logs hold exactly
// the source entries, in order, with no re-delivery and no skips.
func TestChaosFeedResumesFromCursor(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:      11,
		ErrorRate: 0.30,
		DropRate:  0.20,
		DelayRate: 0.20,
		Delay:     time.Millisecond,
	})
	inj.Disable()
	reg := obs.NewRegistry()
	inj.Instrument(reg, "")

	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	exporter := &logexport.Exporter{Requests: rlog, Queries: qlog, MaxWait: time.Second}
	ts := httptest.NewServer(exporter.Handler())
	defer ts.Close()

	mirror := logexport.NewMirror(ts.URL)
	mirror.Client = &http.Client{
		Transport: faults.WrapTransport(nil, inj),
		Timeout:   time.Second,
	}
	mirror.LongPoll = 100 * time.Millisecond
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); mirror.Run(stop) }()

	// Chaos on while the source logs grow: the pump keeps hitting injected
	// failures mid-stream and must carry its cursors across them.
	inj.Enable()
	base := time.Now()
	const n = 40
	for i := 0; i < n; i++ {
		qlog.Append(driver.QueryLogEntry{SQL: fmt.Sprintf("q%d", i), Receive: base, Deliver: base})
		rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: fmt.Sprintf("k%d", i),
			Cached: true, Receive: base, Deliver: base})
		time.Sleep(2 * time.Millisecond)
	}
	inj.Heal()

	deadline := time.Now().Add(30 * time.Second)
	for mirror.Queries.Len() < n || mirror.Requests.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("healed pump stuck: %d/%d queries, %d/%d requests mirrored",
				mirror.Queries.Len(), n, mirror.Requests.Len(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	qs, _ := mirror.Queries.Since(1)
	if len(qs) != n {
		t.Fatalf("query log re-delivered: %d entries, want %d", len(qs), n)
	}
	for i, q := range qs {
		if q.SQL != fmt.Sprintf("q%d", i) {
			t.Fatalf("query %d: got %q (duplicate or skip across resume)", i, q.SQL)
		}
	}
	reqs, _ := mirror.Requests.Since(1)
	if len(reqs) != n {
		t.Fatalf("request log re-delivered: %d entries, want %d", len(reqs), n)
	}
	for i, r := range reqs {
		if r.CacheKey != fmt.Sprintf("k%d", i) {
			t.Fatalf("request %d: got %q (duplicate or skip across resume)", i, r.CacheKey)
		}
	}
	if reg.Snapshot().Counters["faults.injected_total"] == 0 {
		t.Fatal("no faults were injected")
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pump did not stop")
	}
}
