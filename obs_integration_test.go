package cacheportal

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFreshnessTraceRecordsStaleness drives one full update→invalidate round
// trip through a live site and asserts the freshness trace produced a
// commit-to-eject staleness sample: the record was stamped at ingestion, the
// stamp survived delta analysis and eject, and the measured window is
// positive.
func TestFreshnessTraceRecordsStaleness(t *testing.T) {
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)

	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("page not invalidated")
	}

	snap := site.Obs.Snapshot()
	h, ok := snap.Histograms["invalidator.staleness_seconds"]
	if !ok {
		t.Fatal("staleness histogram missing from snapshot")
	}
	if h.Count < 1 {
		t.Fatalf("no staleness samples recorded: %+v", h)
	}
	if h.Sum <= 0 {
		t.Fatalf("staleness sum not positive: %g", h.Sum)
	}
	perServlet, ok := snap.Histograms["invalidator.staleness_seconds.under"]
	if !ok || perServlet.Count < 1 {
		t.Fatalf("per-servlet staleness missing: ok=%v %+v", ok, perServlet)
	}

	// The pipeline counters must show the trip: records ingested, a page
	// invalidated, cycles run.
	for _, name := range []string{
		"invalidator.cycles_total",
		"invalidator.update_records_total",
		"invalidator.pages_invalidated_total",
		"sniffer.map_runs_total",
	} {
		if snap.Counters[name] < 1 {
			t.Fatalf("%s = %d, want >= 1", name, snap.Counters[name])
		}
	}
	if snap.Gauges["webcache.invalidations_total"] < 1 {
		t.Fatalf("cache invalidation gauge: %d", snap.Gauges["webcache.invalidations_total"])
	}

	// The /debug/metrics document a daemon would serve round-trips with the
	// staleness histogram intact.
	rw := httptest.NewRecorder()
	obs.MetricsHandler(site.Obs).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/metrics", nil))
	var decoded obs.Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v", err)
	}
	if decoded.Histograms["invalidator.staleness_seconds"].Count < 1 {
		t.Fatal("staleness histogram empty in /debug/metrics")
	}
}

// TestFeedMetricsAndFreshnessTrace is the event-driven twin: with the
// fallback timer effectively off (hour-long interval), the update stream
// alone must carry a commit through to an eject, the freshness trace must
// record the staleness window, and the feed-layer gauges — stream delivery,
// hub fan-out for the request/query logs — must surface in /debug/metrics.
func TestFeedMetricsAndFreshnessTrace(t *testing.T) {
	site := feedCarSite(t)
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)
	if key == "" {
		t.Fatal("no cache key")
	}

	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	// Passive wait: nothing calls Cycle, so the eviction can only come from
	// the event path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, present := site.Cache.Peek(key); !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event-driven site never evicted the stale page")
		}
		time.Sleep(2 * time.Millisecond)
	}

	snap := site.Obs.Snapshot()
	h, ok := snap.Histograms["invalidator.staleness_seconds"]
	if !ok || h.Count < 1 {
		t.Fatalf("staleness histogram missing or empty under feed mode: ok=%v %+v", ok, h)
	}
	// The event path's whole point: commit-to-eject staleness is bounded by
	// the coalescing gap plus cycle time, strictly below the cycle interval
	// that floors pull mode (here the hour-long fallback).
	if p95 := h.Quantile(0.95); p95 >= time.Hour.Seconds() {
		t.Fatalf("p95 staleness %.3fs not below the cycle interval", p95)
	}
	if snap.Counters["invalidator.event_cycles_total"] < 1 {
		t.Fatal("no event-driven cycles recorded")
	}

	// Feed-layer health: the update-log stream delivered the record, and the
	// mapper's two hub subscriptions are live and have carried records.
	if snap.Gauges["feed.delivered_total"] < 1 {
		t.Fatalf("feed.delivered_total = %d, want >= 1", snap.Gauges["feed.delivered_total"])
	}
	for _, name := range []string{"feed.requests", "feed.queries"} {
		if snap.Gauges[name+".subscribers"] != 1 {
			t.Fatalf("%s.subscribers = %d, want 1", name, snap.Gauges[name+".subscribers"])
		}
		if snap.Gauges[name+".records_total"] < 1 {
			t.Fatalf("%s.records_total = %d, want >= 1", name, snap.Gauges[name+".records_total"])
		}
	}
	if snap.Gauges["feed.resubscribes_total"] != 0 {
		t.Fatalf("healthy stream resubscribed %d times", snap.Gauges["feed.resubscribes_total"])
	}

	// And the daemon-facing document carries all of it.
	rw := httptest.NewRecorder()
	obs.MetricsHandler(site.Obs).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/metrics", nil))
	var decoded obs.Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v", err)
	}
	if decoded.Histograms["invalidator.staleness_seconds"].Count < 1 {
		t.Fatal("staleness histogram empty in /debug/metrics")
	}
	if decoded.Gauges["feed.delivered_total"] < 1 {
		t.Fatal("feed gauges missing from /debug/metrics")
	}
}
