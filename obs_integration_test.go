package cacheportal

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFreshnessTraceRecordsStaleness drives one full update→invalidate round
// trip through a live site and asserts the freshness trace produced a
// commit-to-eject staleness sample: the record was stamped at ingestion, the
// stamp survived delta analysis and eject, and the measured window is
// positive.
func TestFreshnessTraceRecordsStaleness(t *testing.T) {
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)

	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("page not invalidated")
	}

	snap := site.Obs.Snapshot()
	h, ok := snap.Histograms["invalidator.staleness_seconds"]
	if !ok {
		t.Fatal("staleness histogram missing from snapshot")
	}
	if h.Count < 1 {
		t.Fatalf("no staleness samples recorded: %+v", h)
	}
	if h.Sum <= 0 {
		t.Fatalf("staleness sum not positive: %g", h.Sum)
	}
	perServlet, ok := snap.Histograms["invalidator.staleness_seconds.under"]
	if !ok || perServlet.Count < 1 {
		t.Fatalf("per-servlet staleness missing: ok=%v %+v", ok, perServlet)
	}

	// The pipeline counters must show the trip: records ingested, a page
	// invalidated, cycles run.
	for _, name := range []string{
		"invalidator.cycles_total",
		"invalidator.update_records_total",
		"invalidator.pages_invalidated_total",
		"sniffer.map_runs_total",
	} {
		if snap.Counters[name] < 1 {
			t.Fatalf("%s = %d, want >= 1", name, snap.Counters[name])
		}
	}
	if snap.Gauges["webcache.invalidations_total"] < 1 {
		t.Fatalf("cache invalidation gauge: %d", snap.Gauges["webcache.invalidations_total"])
	}

	// The /debug/metrics document a daemon would serve round-trips with the
	// staleness histogram intact.
	rw := httptest.NewRecorder()
	obs.MetricsHandler(site.Obs).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/metrics", nil))
	var decoded obs.Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v", err)
	}
	if decoded.Histograms["invalidator.staleness_seconds"].Count < 1 {
		t.Fatal("staleness histogram empty in /debug/metrics")
	}
}
