package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/webcache"
)

// carSite builds the Example 4.1 application as a real site: DBMS over TCP,
// servlet container, caching proxy, CachePortal.
func carSite(t testing.TB) *Site {
	t.Helper()
	site, err := NewSite(SiteConfig{
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('M3', 19), ('Avalon', 26);
		`,
		Servlets: []ServletDef{
			{
				Meta: Meta{Name: "under", Keys: KeySpec{Get: []string{"price"}}},
				Handler: func(ctx *Context) (*Page, error) {
					lease, err := ctx.Lease("db")
					if err != nil {
						return nil, err
					}
					defer lease.Release()
					res, err := lease.Query(
						"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
							"WHERE Car.model = Mileage.model AND Car.price < " + ctx.Param("price"))
					if err != nil {
						return nil, err
					}
					var b strings.Builder
					for _, r := range res.Rows {
						fmt.Fprintf(&b, "%s %s %s %s\n", r[0], r[1], r[2], r[3])
					}
					return &Page{Body: []byte(b.String())}, nil
				},
			},
		},
		Interval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

func fetch(t testing.TB, url string) (string, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get(webcache.HitHeader), resp.Header.Get("X-Cacheportal-Key")
}

func TestEndToEndCacheHitAndInvalidation(t *testing.T) {
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"

	// Miss, then hit with identical content.
	b1, h1, key := fetch(t, url)
	if h1 != "miss" {
		t.Fatalf("first fetch: %s", h1)
	}
	if !strings.Contains(b1, "Corolla") || strings.Contains(b1, "M3") {
		t.Fatalf("body: %q", b1)
	}
	b2, h2, _ := fetch(t, url)
	if h2 != "hit" || b2 != b1 {
		t.Fatalf("second fetch: %s %q", h2, b2)
	}

	// Backend update that affects the page: new cheap car with mileage.
	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("page not invalidated")
	}

	// Fresh fetch shows the new row.
	b3, h3, _ := fetch(t, url)
	if h3 != "miss" {
		t.Fatalf("after invalidation: %s", h3)
	}
	if !strings.Contains(b3, "Avalon") {
		t.Fatalf("stale content after invalidation: %q", b3)
	}
}

func TestEndToEndIrrelevantUpdateKeepsPageCached(t *testing.T) {
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"
	_, _, key := fetch(t, url)
	fetch(t, url) // warm

	// Expensive car: fails the local price predicate — page must survive.
	if err := site.Exec("INSERT INTO Car VALUES ('Porsche', '911', 120000)"); err != nil {
		t.Fatal(err)
	}
	// Give the portal several cycles.
	for i := 0; i < 5; i++ {
		site.Portal.Cycle()
	}
	if _, present := site.Cache.Peek(key); !present {
		t.Fatal("irrelevant update evicted the page")
	}
	_, h, _ := fetch(t, url)
	if h != "hit" {
		t.Fatalf("expected hit, got %s", h)
	}
}

func TestEndToEndDistinctPagesIndependent(t *testing.T) {
	site := carSite(t)
	urlLow := site.CacheURL + "/under?price=16500"
	urlHigh := site.CacheURL + "/under?price=99999"
	_, _, keyLow := fetch(t, urlLow)
	_, _, keyHigh := fetch(t, urlHigh)

	// 17000 affects only the high page.
	if err := site.Exec("INSERT INTO Car VALUES ('Mazda', 'Miata', 17000)"); err != nil {
		t.Fatal(err)
	}
	site.Exec("INSERT INTO Mileage VALUES ('Miata', 30)")
	if !site.WaitForInvalidation(keyHigh, 5*time.Second) {
		t.Fatal("high page not invalidated")
	}
	if _, present := site.Cache.Peek(keyLow); !present {
		t.Fatal("low page should have survived")
	}
}

func TestEndToEndUpdateAndDelete(t *testing.T) {
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"
	b1, _, key := fetch(t, url)
	if !strings.Contains(b1, "Corolla") {
		t.Fatalf("body: %q", b1)
	}

	// Price change pushes the Corolla out of range.
	if err := site.Exec("UPDATE Car SET price = 25000 WHERE model = 'Corolla'"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("page not invalidated after UPDATE")
	}
	b2, _, _ := fetch(t, url)
	if strings.Contains(b2, "Corolla") {
		t.Fatalf("stale Corolla after update: %q", b2)
	}

	// Delete the Civic's mileage row: page must fall again.
	if err := site.Exec("DELETE FROM Mileage WHERE model = 'Civic'"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("page not invalidated after DELETE")
	}
	b3, _, _ := fetch(t, url)
	if strings.Contains(b3, "Civic") {
		t.Fatalf("stale Civic after delete: %q", b3)
	}
}

func TestEndToEndConcurrentLoad(t *testing.T) {
	site := carSite(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				price := 15000 + (g*7+i)%4*2000
				resp, err := http.Get(fmt.Sprintf("%s/under?price=%d", site.CacheURL, price))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Concurrent updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			site.Exec(fmt.Sprintf("INSERT INTO Car VALUES ('Gen', 'Model%d', %d)", i, 10000+i*1000))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := site.Cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits under load: %+v", st)
	}
}

func TestEndToEndFreshnessUnderContinuousUpdates(t *testing.T) {
	// The paper's core guarantee, live: every served page equals what the
	// database would produce, modulo the invalidation window. We check that
	// after quiescing the portal, a fresh fetch equals a direct DB render.
	site := carSite(t)
	url := site.CacheURL + "/under?price=20000"
	for i := 0; i < 6; i++ {
		fetch(t, url)
		site.Exec(fmt.Sprintf("INSERT INTO Car VALUES ('T', 'X%d', %d)", i, 14000+i*500))
		site.Exec(fmt.Sprintf("INSERT INTO Mileage VALUES ('X%d', %d)", i, 20+i))
	}
	// Quiesce: run cycles until nothing more is invalidated.
	for i := 0; i < 10; i++ {
		rep, err := site.Portal.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Invalidated == 0 && rep.UpdateRecords == 0 {
			break
		}
	}
	got, _, _ := fetch(t, url) // may be a miss (invalidated) → fresh render
	// Direct render from the DB for comparison.
	res, err := site.DB.ExecSQL("SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%s %s %s %s\n", r[0], r[1], r[2], r[3])
	}
	if got != b.String() {
		t.Fatalf("served page is stale:\nserved:  %q\ncurrent: %q", got, b.String())
	}
}

func TestNewSiteValidation(t *testing.T) {
	if _, err := NewSite(SiteConfig{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := NewSite(SiteConfig{Schema: "CREATE TABLE t (a INT)"}); err == nil {
		t.Fatal("no servlets must fail")
	}
	if _, err := NewSite(SiteConfig{Schema: "NOT SQL", Servlets: []ServletDef{{Meta: Meta{Name: "x"}, Handler: func(*Context) (*Page, error) { return &Page{}, nil }}}}); err == nil {
		t.Fatal("bad schema must fail")
	}
}

func TestPortalOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options must fail")
	}
}

func TestPortalStartStop(t *testing.T) {
	site := carSite(t)
	// Portal already started by NewSite; double start errors.
	if err := site.Portal.Start(); err == nil {
		t.Fatal("double start must fail")
	}
	site.Portal.Stop()
	site.Portal.Stop() // idempotent
	if err := site.Portal.Start(); err != nil {
		t.Fatal(err)
	}
	_, _, cycles := site.Portal.LastReport()
	_ = cycles
}
